//! `sbatchd` — the per-host slave batch daemon and its task runner
//! (LSF's `res`), with this scheduler's own TDP integration.

use crate::messages::{Dispatch, MbdMsg, SbdMsg};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use tdp_core::{Role, TdpCreate, TdpHandle, World};
use tdp_netsim::ConnTx;
use tdp_proto::{names, Addr, ContextId, HostId, TdpError, TdpResult};
use tdp_proto::{JobId, Pid};
use tdp_simos::Sink;
use tdp_sync::Mutex;

/// A running sbatchd. Dropping it does not stop in-flight tasks (they
/// finish and report); it only stops accepting dispatches (the conn
/// closes).
pub struct Sbatchd {
    pub host: HostId,
    pub name: String,
    _reader: thread::JoinHandle<()>,
}

/// Start an sbatchd on `host` advertising `slots` slots, registering
/// with the mbatchd at `mbd`.
pub fn start(world: &World, host: HostId, slots: u32, mbd: Addr) -> TdpResult<Sbatchd> {
    let conn = world.net().connect(host, mbd)?;
    let name = format!("sbatchd@host{}", host.0);
    let (tx, mut rx) = conn.split();
    let tx = Arc::new(tx);
    send(
        &tx,
        &SbdMsg::Register {
            name: name.clone(),
            slots,
        },
    )?;
    let world2 = world.clone();
    let running: Arc<Mutex<HashMap<JobId, Vec<Pid>>>> = Arc::new(Mutex::new(HashMap::new()));
    let reader = thread::Builder::new()
        .name(name.clone())
        .spawn(move || {
            let mut buf = Vec::new();
            loop {
                let chunk = match rx.recv() {
                    Ok(c) => c,
                    Err(_) => return,
                };
                buf.extend_from_slice(&chunk);
                // One JSON message per chunk (netsim preserves chunk
                // boundaries); parse and reset.
                let msg: MbdMsg = match serde_json::from_slice(&buf) {
                    Ok(m) => {
                        buf.clear();
                        m
                    }
                    Err(_) => continue, // partial (not expected) — wait
                };
                match msg {
                    MbdMsg::Dispatch(d) => {
                        let world = world2.clone();
                        let tx = tx.clone();
                        let running = running.clone();
                        thread::Builder::new()
                            .name(format!("lsf-res-{}.{}", d.job, d.task))
                            .spawn(move || {
                                let (job, task) = (d.job, d.task);
                                if let Err(e) = run_task(&world, host, d, &tx, &running) {
                                    let _ = send(
                                        &tx,
                                        &SbdMsg::TaskFailed {
                                            job,
                                            task,
                                            error: e.to_string(),
                                        },
                                    );
                                }
                            })
                            .expect("spawn res");
                    }
                    MbdMsg::Kill { job } => {
                        // `bkill`: terminate every local task of the job.
                        let pids = running.lock().get(&job).cloned().unwrap_or_default();
                        for pid in pids {
                            let _ = world2.os().kill(pid, 9);
                        }
                    }
                    MbdMsg::Ack => {}
                }
            }
        })
        .map_err(|e| TdpError::Substrate(format!("spawn sbatchd reader: {e}")))?;
    Ok(Sbatchd {
        host,
        name,
        _reader: reader,
    })
}

fn send(tx: &ConnTx, msg: &SbdMsg) -> TdpResult<()> {
    let data = serde_json::to_vec(msg).map_err(|e| TdpError::Protocol(format!("encode: {e}")))?;
    tx.send(&data)
}

/// The task runner — LSF's `res`, speaking TDP. This is this
/// scheduler's *entire* integration with run-time tools: create the
/// application paused, start the tool, put the pid. No tool is named
/// anywhere in this crate.
fn run_task(
    world: &World,
    host: HostId,
    d: Dispatch,
    tx: &ConnTx,
    running: &Mutex<HashMap<JobId, Vec<Pid>>>,
) -> TdpResult<()> {
    // Context disjoint per (job, task).
    let ctx = ContextId(500_000 + d.job.0 * 1_000 + u64::from(d.task));
    let mut tdp = TdpHandle::init(world, host, ctx, "res", Role::ResourceManager)?;

    // Snapshot the filesystem so tool-produced files can be staged back.
    let before: HashSet<String> = world.os().fs().list(host, "").into_iter().collect();

    let mut app = TdpCreate::new(d.executable.clone())
        .args(d.args.clone())
        .stdin_bytes(d.stdin.clone())
        .stdout(Sink::Capture)
        .stderr(Sink::Capture);
    if d.suspend_at_exec {
        app = app.paused();
    }
    let app_pid = tdp.create_process(app)?;
    world.os().close_stdin(app_pid)?;
    running.lock().entry(d.job).or_default().push(app_pid);
    let _ = send(
        tx,
        &SbdMsg::TaskStarted {
            job: d.job,
            task: d.task,
            pid: app_pid.0,
        },
    );

    let tool_pid = match &d.tool {
        Some(tool) => {
            let mut args = tool.args.clone();
            args.push(format!("-c{}", ctx.0));
            let pid = tdp.create_process(
                TdpCreate::new(tool.cmd.clone())
                    .args(args)
                    .stdout(Sink::Capture)
                    .stderr(Sink::Capture),
            )?;
            tdp.put(names::PID, &app_pid.to_string())?;
            tdp.put(names::EXECUTABLE_NAME, &d.executable)?;
            if let Some(cass) = world.cass_addr() {
                tdp.put(names::CASS_ADDR, &cass.to_attr_value())?;
            }
            Some(pid)
        }
        None => {
            if d.suspend_at_exec {
                // No tool will ever continue it; the scheduler does.
                tdp.continue_process(app_pid)?;
            }
            None
        }
    };

    let status = tdp.wait_terminal(app_pid, Duration::from_secs(600))?;
    tdp.publish_status(status)?;
    if let Some(tp) = tool_pid {
        let _ = world.os().wait_terminal(tp, Duration::from_secs(30));
    }

    // Inline staging back: stdio plus whatever new data files appeared
    // (tool reports, traces).
    let stdout = world.os().read_stdout(app_pid)?;
    let stderr = world.os().read_stderr(app_pid)?;
    let mut tool_files = Vec::new();
    for f in world.os().fs().list(host, "") {
        if !before.contains(&f) {
            if let Ok(data) = world.os().fs().read_file(host, &f) {
                tool_files.push((f, data));
            }
        }
    }
    running
        .lock()
        .entry(d.job)
        .or_default()
        .retain(|p| *p != app_pid);
    tdp.exit()?;
    send(
        tx,
        &SbdMsg::TaskDone {
            job: d.job,
            task: d.task,
            status: status.to_attr_value(),
            stdout,
            stderr,
            tool_files,
        },
    )
}
