//! mbatchd ↔ sbatchd wire messages.

use serde::{Deserialize, Serialize};
use tdp_proto::JobId;

/// A tool daemon request attached to a job (`bsub -tool`), the LSF-side
/// equivalent of Condor's `+ToolDaemon*` directives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ToolSpecWire {
    pub cmd: String,
    pub args: Vec<String>,
}

/// One task dispatch (mbatchd → sbatchd).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dispatch {
    pub job: JobId,
    pub task: u32,
    pub executable: String,
    pub args: Vec<String>,
    /// Staged stdin contents (inline staging — LSF copies files with
    /// the job, unlike Condor's remote syscalls).
    pub stdin: Vec<u8>,
    /// Create the task stopped at exec.
    pub suspend_at_exec: bool,
    pub tool: Option<ToolSpecWire>,
}

/// sbatchd → mbatchd messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SbdMsg {
    /// Registration: host with `slots` execution slots.
    Register { name: String, slots: u32 },
    /// A task's application process started (pid known) — lets mbatchd
    /// route `bkill`s.
    TaskStarted { job: JobId, task: u32, pid: u64 },
    /// A task finished; stdout/stderr travel inline.
    TaskDone {
        job: JobId,
        task: u32,
        status: String,
        stdout: Vec<u8>,
        stderr: Vec<u8>,
        /// Files the tool produced on the execution host, staged back
        /// inline: (name, contents).
        tool_files: Vec<(String, Vec<u8>)>,
    },
    /// A task could not be started.
    TaskFailed {
        job: JobId,
        task: u32,
        error: String,
    },
}

/// mbatchd → sbatchd messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MbdMsg {
    Dispatch(Dispatch),
    /// `bkill`: terminate every task of `job` running on this host.
    Kill {
        job: JobId,
    },
    Ack,
}
