//! `report` — regenerate every quantitative row of `EXPERIMENTS.md` in
//! one run (medians of quick in-process measurements; the criterion
//! harnesses in `benches/` are the careful versions).
//!
//! ```text
//! cargo run -q --release -p tdp-bench --bin report
//! ```

use std::sync::Arc;
use std::time::Duration;
use tdp_bench::{fmt_dur, median_time};
use tdp_condor::{CondorPool, JobState};
use tdp_core::{Role, TdpCreate, TdpHandle, World};
use tdp_lsf::{LsfCluster, LsfJobState, LsfRequest};
use tdp_mpi::{apps, MpiComm};
use tdp_mrnet::{BackEnd, FrontEnd, ReduceOp, TreeSpec};
use tdp_netsim::{proxy, FirewallPolicy, Network};
use tdp_paradyn::{paradynd_image, ParadynFrontend};
use tdp_proto::{Addr, ContextId, HostId};
use tdp_simos::{fn_program, ExecImage};
use tdp_tools::{tracey_image, vamp_image};

const T: Duration = Duration::from_secs(60);

fn header(title: &str) {
    println!("\n## {title}\n");
}

fn row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<46} {value}");
}

fn app_image() -> ExecImage {
    ExecImage::new(
        ["main", "work"],
        Arc::new(|_| {
            fn_program(|ctx| {
                ctx.call("main", |ctx| {
                    for _ in 0..10 {
                        ctx.call("work", |ctx| ctx.compute(10));
                    }
                });
                0
            })
        }),
    )
}

fn b1_attrspace() {
    header("B1 — Attribute space (§2.1/§3.2)");
    let world = World::new();
    let host = world.add_host();
    let mut rm = TdpHandle::init(&world, host, ContextId(1), "rm", Role::ResourceManager).unwrap();
    let mut rt = TdpHandle::init(&world, host, ContextId(1), "rt", Role::Tool).unwrap();
    rm.put("warm", "1").unwrap();
    let mut i = 0u64;
    row(
        "tdp_put (median)",
        fmt_dur(median_time(2000, || {
            i += 1;
            rm.put("k", &i.to_string()).unwrap();
        })),
    );
    row(
        "tdp_get hit (median)",
        fmt_dur(median_time(2000, || {
            rt.get("k").unwrap();
        })),
    );
    row(
        "tdp_get miss, non-blocking (median)",
        fmt_dur(median_time(2000, || {
            let _ = rt.try_get("never");
        })),
    );
    // Blocking wake-up round trip.
    let mut n = 0u64;
    let wake = median_time(50, || {
        n += 1;
        let key = format!("wake{n}");
        let world2 = world.clone();
        let key2 = key.clone();
        let waiter = std::thread::Builder::new()
            .name("bench-wake-waiter".into())
            .spawn(move || {
                let mut w = TdpHandle::init(&world2, host, ContextId(1), "w", Role::Tool).unwrap();
                w.get(&key2).unwrap()
            })
            .expect("spawn waiter");
        std::thread::sleep(Duration::from_micros(200));
        rm.put(&key, "v").unwrap();
        waiter.join().unwrap();
    });
    row("blocking get wake-up (incl. thread join)", fmt_dur(wake));
}

fn b7_wire() {
    header("B7 — Transport backends: netsim vs TCP loopback vs epoll reactor");
    for (name, world) in [
        ("netsim", World::new()),
        ("tcp", World::new_tcp()),
        ("epoll", World::new_epoll()),
    ] {
        let host = world.add_host();
        let mut rm =
            TdpHandle::init(&world, host, ContextId(1), "rm", Role::ResourceManager).unwrap();
        let mut rt = TdpHandle::init(&world, host, ContextId(1), "rt", Role::Tool).unwrap();
        rm.put("warm", "1").unwrap();
        let mut i = 0u64;
        row(
            &format!("tdp_put over {name} (median)"),
            fmt_dur(median_time(2000, || {
                i += 1;
                rm.put("k", &i.to_string()).unwrap();
            })),
        );
        row(
            &format!("tdp_get hit over {name} (median)"),
            fmt_dur(median_time(2000, || {
                rt.get("k").unwrap();
            })),
        );
    }
}

fn b8_connection_scaling() {
    header("B8 — Connection scaling: aggregate put rate × wire threads");
    println!("  backend × sessions                             agg rate   latency    wire threads");
    const TOTAL_OPS: usize = 2000;
    for n in [1usize, 8, 100] {
        for (name, world) in [
            ("netsim", World::new()),
            ("tcp", World::new_tcp()),
            ("epoll", World::new_epoll()),
        ] {
            let host = world.add_host();
            // The RM's init starts the LASS; sessions are Tool handles.
            let _rm =
                TdpHandle::init(&world, host, ContextId(1), "rm", Role::ResourceManager).unwrap();
            let mut sessions: Vec<TdpHandle> = (0..n)
                .map(|i| {
                    TdpHandle::init(&world, host, ContextId(1), &format!("s{i}"), Role::Tool)
                        .unwrap()
                })
                .collect();
            let per_conn = TOTAL_OPS / n;
            let t0 = std::time::Instant::now();
            std::thread::scope(|s| {
                for h in sessions.iter_mut() {
                    s.spawn(move || {
                        for i in 0..per_conn {
                            h.put("k", &i.to_string()).unwrap();
                        }
                    });
                }
            });
            let wall = t0.elapsed();
            let rate = (per_conn * n) as f64 / wall.as_secs_f64();
            let latency = fmt_dur(Duration::from_secs_f64(
                wall.as_secs_f64() / per_conn.max(1) as f64,
            ));
            let threads = tdp_wire::wire_thread_count();
            row(
                &format!("{name} × {n} sessions"),
                format!("{rate:>9.0}/s   {latency:>7}    {threads}"),
            );
        }
    }
    println!(
        "  (latency = wall / per-session ops; epoll thread count stays flat as sessions grow)"
    );

    // Reactor-shard sweep (ISSUE 9): the epoll backend's aggregate put
    // rate as session count climbs into the hundreds, per shard count.
    // A fixed pool of driver threads multiplexes the sessions (the way
    // scalability harnesses like memtier drive many connections), so
    // the curve measures the reactor substrate's capacity rather than
    // client-side scheduler thrash from one OS thread per session.
    // Each session performs the same number of puts regardless of n,
    // and gets one warm-up put before the barrier so per-connection
    // pools and decoder buffers are at steady state inside the window.
    println!();
    println!("  epoll shard sweep                              agg rate   latency    wire threads");
    const SWEEP_DRIVERS: usize = 8;
    const OPS_PER_SESSION: usize = 20;
    for shards in [1usize, 2, 4] {
        for n in [100usize, 250, 500, 1000] {
            let world = World::new_epoll_with(tdp_wire::EpollConfig {
                reactors: shards,
                ..Default::default()
            });
            let host = world.add_host();
            let _rm =
                TdpHandle::init(&world, host, ContextId(1), "rm", Role::ResourceManager).unwrap();
            let mut sessions: Vec<TdpHandle> = (0..n)
                .map(|i| {
                    TdpHandle::init(&world, host, ContextId(1), &format!("s{i}"), Role::Tool)
                        .unwrap()
                })
                .collect();
            let drivers = SWEEP_DRIVERS.min(n);
            let barrier = &tdp_sync::Barrier::new(drivers + 1);
            let mut t0 = std::time::Instant::now();
            std::thread::scope(|s| {
                for chunk in sessions.chunks_mut(n.div_ceil(drivers)) {
                    s.spawn(move || {
                        for h in chunk.iter_mut() {
                            h.put("warm", "1").unwrap();
                        }
                        barrier.wait();
                        for i in 0..OPS_PER_SESSION {
                            let v = i.to_string();
                            for h in chunk.iter_mut() {
                                h.put("k", &v).unwrap();
                            }
                        }
                    });
                }
                barrier.wait();
                t0 = std::time::Instant::now();
            });
            let wall = t0.elapsed();
            let total = OPS_PER_SESSION * n;
            let rate = total as f64 / wall.as_secs_f64();
            let latency = fmt_dur(Duration::from_secs_f64(
                wall.as_secs_f64() * drivers as f64 / total as f64,
            ));
            let threads = tdp_wire::wire_thread_count();
            row(
                &format!("{shards} shard(s) × {n} sessions"),
                format!("{rate:>9.0}/s   {latency:>7}    {threads}"),
            );
        }
    }
    println!(
        "  (8 driver threads multiplex the sessions; rate = total puts / timed wall, \
         latency = per-put time seen by one driver)"
    );
}

fn b2_process() {
    header("B2 — Process management (§3.1)");
    let world = World::new();
    let host = world.add_host();
    world.os().fs().install_exec(host, "/bin/noop", app_image());
    let mut rm = TdpHandle::init(&world, host, ContextId(1), "rm", Role::ResourceManager).unwrap();
    row(
        "create(run) → exit (median)",
        fmt_dur(median_time(200, || {
            let pid = rm.create_process(TdpCreate::new("/bin/noop")).unwrap();
            rm.wait_terminal(pid, T).unwrap();
        })),
    );
    row(
        "create(paused)+attach+probe+continue → exit",
        fmt_dur(median_time(200, || {
            let pid = rm
                .create_process(TdpCreate::new("/bin/noop").paused())
                .unwrap();
            rm.attach(pid).unwrap();
            rm.arm_probe(pid, "work").unwrap();
            rm.continue_process(pid).unwrap();
            rm.wait_terminal(pid, T).unwrap();
            let _ = rm.detach(pid);
        })),
    );
}

fn b3_proxy() {
    header("B3 — Tool channel: direct vs proxied (§2.4)");
    let net = Network::new();
    let fe = net.add_host();
    let zone = net.add_private_zone(FirewallPolicy::NAT);
    let exec = net.add_host_in(zone);
    let gw = net.add_host_in(zone);
    let listener = net.listen(fe, 2090).unwrap();
    let fe_addr = Addr::new(fe, 2090);
    net.authorize_route(gw, fe_addr);
    let p = proxy::spawn(&net, gw, 9618).unwrap();
    std::thread::Builder::new()
        .name("bench-echo-accept".into())
        .spawn(move || {
            while let Ok(conn) = listener.accept() {
                std::thread::Builder::new()
                    .name("bench-echo-conn".into())
                    .spawn(move || {
                        let (tx, mut rx) = conn.split();
                        while let Ok(chunk) = rx.recv() {
                            if tx.send_bytes(chunk).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn echo conn");
            }
        })
        .expect("spawn echo accept");
    let payload = vec![0u8; 256];
    let mut direct = net.connect(exec, fe_addr).unwrap();
    let d = median_time(2000, || {
        direct.send(&payload).unwrap();
        direct.recv().unwrap();
    });
    let mut proxied = proxy::connect_via(&net, exec, p.addr(), fe_addr).unwrap();
    let pr = median_time(2000, || {
        proxied.send(&payload).unwrap();
        proxied.recv().unwrap();
    });
    row("round trip 256 B, direct", fmt_dur(d));
    row("round trip 256 B, via RM proxy", fmt_dur(pr));
    row(
        "proxy cost factor",
        format!("{:.1}x", pr.as_nanos() as f64 / d.as_nanos().max(1) as f64),
    );
}

fn b4_parador() {
    header("B4 — Parador end-to-end (§4.3)");
    // Without tool.
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere("/bin/app", app_image());
    let plain = median_time(7, || {
        let job = pool.submit_str("executable = /bin/app\nqueue\n").unwrap();
        assert!(matches!(
            pool.wait_job(job, T).unwrap(),
            JobState::Completed(_)
        ));
    });
    // With paradynd (auto-run).
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere("/bin/app", app_image());
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();
    let submit = format!(
        "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"paradynd\"\n+ToolDaemonArgs = \"-m{} -p{} -P{} -a%pid -A\"\nqueue\n",
        fe.host().0, fe.control_addr().port.0, fe.data_addr().port.0
    );
    let with_tool = median_time(7, || {
        let job = pool.submit_str(&submit).unwrap();
        assert!(matches!(
            pool.wait_job(job, T).unwrap(),
            JobState::Completed(_)
        ));
    });
    // The other scheduler, same job: FIFO dispatch vs matchmaking.
    let world = World::new();
    let master = world.add_host();
    let exec = world.add_host();
    world.os().fs().install_exec(exec, "/bin/app", app_image());
    let cluster = LsfCluster::start(&world, master).unwrap();
    let _sbd = cluster.add_host(exec, 1).unwrap();
    while cluster.bhosts().is_empty() {
        std::thread::sleep(Duration::from_millis(2));
    }
    let lsf_plain = median_time(7, || {
        let job = cluster.bsub(LsfRequest::new("/bin/app")).unwrap();
        assert!(matches!(
            cluster.wait_job(job, T).unwrap(),
            LsfJobState::Done(_)
        ));
    });
    row("condor job, no tool (median)", fmt_dur(plain));
    row("lsf job, no tool (median)", fmt_dur(lsf_plain));
    row("condor job + paradynd via TDP (median)", fmt_dur(with_tool));
    row(
        "monitoring overhead factor",
        format!(
            "{:.1}x",
            with_tool.as_nanos() as f64 / plain.as_nanos().max(1) as f64
        ),
    );

    // MPI startup scaling.
    for n in [2u32, 4, 8] {
        let t = median_time(3, || {
            let world = World::new();
            let pool = CondorPool::build(&world, n as usize).unwrap();
            let comm = MpiComm::new(n);
            pool.install_everywhere("ring", apps::ring(comm, 1, 1));
            let job = pool
                .submit_str(&format!(
                    "universe = MPI\nexecutable = ring\nmachine_count = {n}\nqueue\n"
                ))
                .unwrap();
            assert!(matches!(
                pool.wait_job(job, T).unwrap(),
                JobState::Completed(_)
            ));
        });
        row(&format!("MPI universe startup+run, {n} ranks"), fmt_dur(t));
    }
}

fn b5_mrnet() {
    header("AS — MRNet-style reduction tree (§2)");
    for n in [4usize, 16, 64] {
        let net = Network::new();
        let root = net.add_host();
        let hosts: Vec<HostId> = (0..8).map(|_| net.add_host()).collect();
        let (fe, attach) = FrontEnd::build(
            &net,
            root,
            &hosts,
            n,
            TreeSpec {
                fanout: 4,
                op: ReduceOp::Sum,
            },
        )
        .unwrap();
        let backends: Vec<BackEnd> = attach
            .iter()
            .enumerate()
            .map(|(i, a)| BackEnd::connect(&net, hosts[i % hosts.len()], *a).unwrap())
            .collect();
        let mut wave = 0u64;
        let t = median_time(300, || {
            wave += 1;
            for be in &backends {
                be.contribute(wave, 1).unwrap();
            }
            assert_eq!(fe.recv_reduce(wave, T).unwrap(), n as u64);
        });
        row(
            &format!("reduction wave, {n} leaves (fanout 4)"),
            fmt_dur(t),
        );
    }
}

fn e10_matrix() {
    header("E10 — m + n matrix (§1)");
    println!("  scheduler × tool                               result");
    type ToolCtor = fn(World) -> ExecImage;
    let tools: Vec<(&str, ToolCtor)> = vec![("tracey", tracey_image), ("vamp", vamp_image)];
    for (tool, ctor) in &tools {
        // Condor.
        {
            let world = World::new();
            let pool = CondorPool::build(&world, 1).unwrap();
            pool.install_everywhere("/bin/app", app_image());
            for h in pool.exec_hosts() {
                world.os().fs().install_exec(*h, tool, ctor(world.clone()));
            }
            let job = pool
                .submit_str(&format!(
                    "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"{tool}\"\nqueue\n"
                ))
                .unwrap();
            let ok = matches!(pool.wait_job(job, T).unwrap(), JobState::Completed(_));
            row(&format!("condor × {tool}"), if ok { "OK" } else { "FAIL" });
        }
        // LSF.
        {
            let world = World::new();
            let master = world.add_host();
            let exec = world.add_host();
            world.os().fs().install_exec(exec, "/bin/app", app_image());
            world
                .os()
                .fs()
                .install_exec(exec, tool, ctor(world.clone()));
            let cluster = LsfCluster::start(&world, master).unwrap();
            let _sbd = cluster.add_host(exec, 1).unwrap();
            let job = cluster
                .bsub(LsfRequest::new("/bin/app").suspended().tool(*tool, vec![]))
                .unwrap();
            let ok = matches!(cluster.wait_job(job, T).unwrap(), LsfJobState::Done(_));
            row(&format!("lsf × {tool}"), if ok { "OK" } else { "FAIL" });
        }
    }
    println!("  (paradynd × both schedulers and tdb × minirm are covered in the test suite)");
}

fn b9_gateway() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tdp_gateway::{install_daemon_image, Gateway, GatewayConfig, HttpRpcClient, Json};
    use tdp_sync::Barrier;

    header("B9 — Gateway load: HTTP fan-in over a fixed TDP bridge");
    const CLIENTS: usize = 200;
    const PER_CLIENT: usize = 20;

    let world = World::new();
    let gw_host = world.add_host();
    install_daemon_image(&world, gw_host, "/bin/rtd");
    let gw = Gateway::start(
        &world,
        gw_host,
        GatewayConfig {
            workers: 8,
            pool_size: 8,
            ..GatewayConfig::default()
        },
    )
    .unwrap();
    let addr = gw.addr();

    // A supervised RT daemon that will be murdered mid-load.
    let mut admin = HttpRpcClient::connect(addr).unwrap();
    admin
        .call(
            "proc.spawn",
            Json::obj([
                ("name", Json::from("rt-bench")),
                ("host", Json::from(gw_host.0)),
                ("executable", Json::from("/bin/rtd")),
            ]),
        )
        .unwrap();

    let start = Arc::new(Barrier::new(CLIENTS + 1));
    let invoke_errors = Arc::new(AtomicUsize::new(0));
    let list_failures = Arc::new(AtomicUsize::new(0));
    let stop_lister = Arc::new(AtomicUsize::new(0));

    // Background `proc.list` poller: must never fail, even while the
    // daemon is down and the supervisor is mid-restart.
    let lister = {
        let (failures, stop) = (Arc::clone(&list_failures), Arc::clone(&stop_lister));
        std::thread::Builder::new()
            .name("bench-gw-lister".into())
            .spawn(move || {
                let mut c = HttpRpcClient::connect(addr).unwrap();
                let mut calls = 0usize;
                while stop.load(Ordering::SeqCst) == 0 {
                    if c.call("proc.list", Json::Obj(Vec::new())).is_err() {
                        failures.fetch_add(1, Ordering::SeqCst);
                    }
                    calls += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                calls
            })
            .expect("spawn lister")
    };

    // 200 concurrent HTTP clients: each alternates a timed `tool.invoke
    // echo` with an attribute write through the bridge pool.
    let mut handles = Vec::new();
    for i in 0..CLIENTS {
        let start = Arc::clone(&start);
        let errors = Arc::clone(&invoke_errors);
        let worker = std::thread::Builder::new()
            .name(format!("bench-gw-client-{i}"))
            .spawn(move || {
                let mut c = HttpRpcClient::connect(addr).unwrap();
                let mut lat = Vec::with_capacity(PER_CLIENT);
                start.wait();
                for j in 0..PER_CLIENT {
                    let t = std::time::Instant::now();
                    if c.invoke("echo", Json::obj([("n", Json::from(j as u64))]))
                        .is_err()
                    {
                        errors.fetch_add(1, Ordering::SeqCst);
                    }
                    lat.push(t.elapsed());
                    if c.call(
                        "attr.put",
                        Json::obj([
                            ("ctx", Json::Int(9)),
                            ("key", Json::from(format!("client.{i}"))),
                            ("value", Json::from(j.to_string())),
                        ]),
                    )
                    .is_err()
                    {
                        errors.fetch_add(1, Ordering::SeqCst);
                    }
                }
                lat
            })
            .expect("spawn client");
        handles.push(worker);
    }

    let t0 = std::time::Instant::now();
    start.wait();
    // Mid-load chaos: kill the RT daemon's process and let the ops
    // patrol loop respawn it while requests keep flowing.
    std::thread::sleep(Duration::from_millis(50));
    admin
        .call("proc.crash", Json::obj([("name", Json::from("rt-bench"))]))
        .unwrap();
    let restart = gw
        .core()
        .supervisor()
        .expect("bench gateway runs supervised")
        .wait_restarts("gw.rt-bench", 1, Duration::from_secs(30));

    let mut lat: Vec<Duration> = Vec::new();
    for h in handles {
        lat.extend(h.join().unwrap());
    }
    let wall = t0.elapsed();
    stop_lister.store(1, Ordering::SeqCst);
    let list_calls = lister.join().unwrap();

    lat.sort();
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
    let total = CLIENTS * PER_CLIENT;
    row(
        &format!("{CLIENTS} clients × {PER_CLIENT} invokes"),
        format!("{:.0}/s aggregate", (total * 2) as f64 / wall.as_secs_f64()),
    );
    row("invoke latency p50 / p99 / max", {
        format!(
            "{} / {} / {}",
            fmt_dur(pct(0.50)),
            fmt_dur(pct(0.99)),
            fmt_dur(lat[lat.len() - 1])
        )
    });
    row(
        "TDP sessions under the fan-in",
        format!(
            "{} total = {} bridge pool + 1 ops publisher",
            world.attr_session_count(),
            gw.core().bridge().pool_size()
        ),
    );
    row(
        "daemon kill mid-load",
        match restart {
            Ok(_) => "restarted by supervisor".to_string(),
            Err(e) => format!("FAIL: {e}"),
        },
    );
    row(
        "proc.list during restart",
        format!(
            "{list_calls} calls, {} failed",
            list_failures.load(Ordering::SeqCst)
        ),
    );
    row(
        "invoke errors under chaos",
        invoke_errors.load(Ordering::SeqCst),
    );
}

fn e18_ops() {
    header("E18 — Supervision daemon (tdp-ops)");
    // The same scripted scenario `tdp-ops --kpi-dump` runs: a
    // supervised deployment, one LASS killed, recovery measured.
    match tdp_ops::demo::kpi_dump() {
        Ok(kpis) => {
            for (k, v) in &kpis {
                row(k, v);
            }
        }
        Err(e) => row("ops demo", format!("FAIL: {e}")),
    }
}

fn main() {
    println!("# TDP experiment report (regenerates EXPERIMENTS.md quantitative rows)");
    println!(
        "# build: {} | medians of quick in-process runs",
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    );
    b1_attrspace();
    b7_wire();
    b8_connection_scaling();
    b2_process();
    b3_proxy();
    b4_parador();
    b5_mrnet();
    e10_matrix();
    b9_gateway();
    e18_ops();
    println!("\ndone.");
}
