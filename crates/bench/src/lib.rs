//! Benchmark support: tiny timing helpers shared by the `report` binary
//! (the one-shot regenerator of `EXPERIMENTS.md`'s tables) and ad-hoc
//! measurement code. The statistically careful harnesses live in
//! `benches/` (criterion).

use std::time::{Duration, Instant};

/// Run `f` `n` times and return the median duration of one call.
pub fn median_time(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Render a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut i = 0;
        let d = median_time(5, || {
            i += 1;
            if i == 1 {
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        assert!(d < Duration::from_millis(10), "{d:?}");
    }

    #[test]
    fn fmt_units() {
        assert!(fmt_dur(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt_dur(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_dur(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_secs(2)).ends_with(" s"));
    }
}
