//! **B7 — Transport microbenchmarks**: the same attribute-space
//! operations over `tdp-wire`'s three backends, head to head.
//!
//! The netsim numbers bound what the protocol logic itself costs; the
//! TCP-loopback numbers add real syscalls, the streaming frame decoder
//! and the coalescing writer thread; the epoll numbers swap the
//! two-threads-per-connection model for the shared reactor. All run the
//! identical client and server code — only the `Transport` differs.
//!
//! **B8 — Connection scaling**: aggregate put rate across N concurrent
//! sessions per backend. This is the reactor's reason to exist: at one
//! session all three backends should be at parity; as sessions grow the
//! epoll backend keeps its wire thread count flat (printed to stderr
//! after each case) while the TCP backend pays a thread per connection.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use tdp_core::{Role, TdpHandle, World};
use tdp_proto::ContextId;
use tdp_wire::wire_thread_count;

const CTX: ContextId = ContextId(1);

fn backends() -> Vec<(&'static str, World)> {
    vec![
        ("netsim", World::new()),
        ("tcp", World::new_tcp()),
        ("epoll", World::new_epoll()),
    ]
}

fn pair(world: &World) -> (TdpHandle, TdpHandle) {
    let host = world.add_host();
    let rm = TdpHandle::init(world, host, CTX, "rm", Role::ResourceManager).unwrap();
    let rt = TdpHandle::init(world, host, CTX, "rt", Role::Tool).unwrap();
    (rm, rt)
}

fn bench_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_latency");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);

    for (name, world) in backends() {
        let (mut rm, mut rt) = pair(&world);
        rm.put("warm", "1").unwrap();

        g.bench_function(format!("{name}/put"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                rm.put("bench_key", &i.to_string()).unwrap();
            });
        });

        g.bench_function(format!("{name}/get_hit"), |b| {
            b.iter(|| black_box(rt.get("bench_key").unwrap()));
        });
    }
    g.finish();
}

fn bench_throughput(c: &mut Criterion) {
    // Streamed puts: the socket paths exercise their outbound queueing
    // (writer-thread coalescing on tcp, outbox draining on epoll); each
    // put still waits for its Ok, so this is a pipelined request/reply
    // rate, not raw socket bandwidth.
    const BATCH: u64 = 256;
    let mut g = c.benchmark_group("wire_throughput");
    g.measurement_time(Duration::from_secs(2))
        .sample_size(20)
        .throughput(Throughput::Elements(BATCH));

    for (name, world) in backends() {
        let (mut rm, _rt) = pair(&world);
        g.bench_function(format!("{name}/put_stream_{BATCH}"), |b| {
            b.iter(|| {
                for i in 0..BATCH {
                    rm.put("stream_key", &i.to_string()).unwrap();
                }
            });
        });
    }
    g.finish();
}

fn bench_connection_scaling(c: &mut Criterion) {
    // B8: aggregate request/reply rate over N concurrent sessions to
    // one host's LASS. Total ops per iteration is held constant so the
    // numbers compare across N directly.
    const TOTAL_OPS: u64 = 400;
    let mut g = c.benchmark_group("wire_scaling");
    g.measurement_time(Duration::from_secs(2))
        .sample_size(10)
        .throughput(Throughput::Elements(TOTAL_OPS));

    for conns in [1usize, 8, 100] {
        let per_conn = TOTAL_OPS / conns as u64;
        for (name, world) in backends() {
            let host = world.add_host();
            // The RM's init starts the LASS; sessions are Tool handles.
            let _rm = TdpHandle::init(&world, host, CTX, "rm", Role::ResourceManager).unwrap();
            let mut sessions: Vec<TdpHandle> = (0..conns)
                .map(|i| TdpHandle::init(&world, host, CTX, &format!("s{i}"), Role::Tool).unwrap())
                .collect();
            g.bench_function(format!("{name}/{conns}_sessions"), |b| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for h in sessions.iter_mut() {
                            s.spawn(move || {
                                for i in 0..per_conn {
                                    h.put("k", &i.to_string()).unwrap();
                                }
                            });
                        }
                    });
                });
            });
            eprintln!(
                "wire_scaling/{name}/{conns}_sessions: {} wire threads",
                wire_thread_count()
            );
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_latency,
    bench_throughput,
    bench_connection_scaling
);
criterion_main!(benches);
