//! **B7 — Transport microbenchmarks**: the same attribute-space
//! operations over `tdp-wire`'s two backends, head to head.
//!
//! The netsim numbers bound what the protocol logic itself costs; the
//! TCP-loopback numbers add real syscalls, the streaming frame decoder
//! and the coalescing writer thread. Both run the identical client and
//! server code — only the `Transport` differs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use tdp_core::{Role, TdpHandle, World};
use tdp_proto::ContextId;

const CTX: ContextId = ContextId(1);

fn pair(world: &World) -> (TdpHandle, TdpHandle) {
    let host = world.add_host();
    let rm = TdpHandle::init(world, host, CTX, "rm", Role::ResourceManager).unwrap();
    let rt = TdpHandle::init(world, host, CTX, "rt", Role::Tool).unwrap();
    (rm, rt)
}

fn bench_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_latency");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);

    for (name, world) in [("netsim", World::new()), ("tcp", World::new_tcp())] {
        let (mut rm, mut rt) = pair(&world);
        rm.put("warm", "1").unwrap();

        g.bench_function(format!("{name}/put"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                rm.put("bench_key", &i.to_string()).unwrap();
            });
        });

        g.bench_function(format!("{name}/get_hit"), |b| {
            b.iter(|| black_box(rt.get("bench_key").unwrap()));
        });
    }
    g.finish();
}

fn bench_throughput(c: &mut Criterion) {
    // Streamed puts: the TCP path exercises the bounded-queue writer
    // and its coalescing; each put still waits for its Ok, so this is a
    // pipelined request/reply rate, not raw socket bandwidth.
    const BATCH: u64 = 256;
    let mut g = c.benchmark_group("wire_throughput");
    g.measurement_time(Duration::from_secs(2))
        .sample_size(20)
        .throughput(Throughput::Elements(BATCH));

    for (name, world) in [("netsim", World::new()), ("tcp", World::new_tcp())] {
        let (mut rm, _rt) = pair(&world);
        g.bench_function(format!("{name}/put_stream_{BATCH}"), |b| {
            b.iter(|| {
                for i in 0..BATCH {
                    rm.put("stream_key", &i.to_string()).unwrap();
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_latency, bench_throughput);
criterion_main!(benches);
