//! **Auxiliary-service benchmarks**: the multicast/reduction tree the
//! paper calls "crucial to scalable tool use" (§2, citing MRNet). The
//! interesting shape: reduction latency grows logarithmically with the
//! leaf count when fan-out is fixed, and fan-out trades tree depth for
//! per-node work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tdp_mrnet::{BackEnd, FrontEnd, ReduceOp, TreeSpec};
use tdp_netsim::Network;
use tdp_proto::HostId;

struct Tree {
    fe: FrontEnd,
    backends: Vec<BackEnd>,
}

fn build(n_leaves: usize, fanout: usize) -> Tree {
    let net = Network::new();
    let root = net.add_host();
    let hosts: Vec<HostId> = (0..8).map(|_| net.add_host()).collect();
    let (fe, attach) = FrontEnd::build(
        &net,
        root,
        &hosts,
        n_leaves,
        TreeSpec {
            fanout,
            op: ReduceOp::Sum,
        },
    )
    .unwrap();
    let backends = attach
        .iter()
        .enumerate()
        .map(|(i, a)| BackEnd::connect(&net, hosts[i % hosts.len()], *a).unwrap())
        .collect();
    Tree { fe, backends }
}

fn bench_reduction_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("mrnet_reduce");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    for n in [4usize, 16, 64] {
        let tree = build(n, 4);
        let mut wave = 0u64;
        g.bench_with_input(BenchmarkId::new("leaves", n), &n, |b, _| {
            b.iter(|| {
                wave += 1;
                for be in &tree.backends {
                    be.contribute(wave, 1).unwrap();
                }
                assert_eq!(
                    tree.fe.recv_reduce(wave, Duration::from_secs(10)).unwrap(),
                    tree.backends.len() as u64
                );
            });
        });
    }
    g.finish();
}

fn bench_fanout_tradeoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("mrnet_fanout");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    for fanout in [2usize, 4, 16] {
        let tree = build(32, fanout);
        let mut wave = 0u64;
        g.bench_with_input(
            BenchmarkId::new("fanout32leaves", fanout),
            &fanout,
            |b, _| {
                b.iter(|| {
                    wave += 1;
                    for be in &tree.backends {
                        be.contribute(wave, 2).unwrap();
                    }
                    assert_eq!(
                        tree.fe.recv_reduce(wave, Duration::from_secs(10)).unwrap(),
                        64
                    );
                });
            },
        );
    }
    g.finish();
}

fn bench_multicast(c: &mut Criterion) {
    let mut g = c.benchmark_group("mrnet_multicast");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    for n in [4usize, 32] {
        let mut tree = build(n, 4);
        g.bench_with_input(BenchmarkId::new("leaves", n), &n, |b, _| {
            b.iter(|| {
                tree.fe.multicast(b"sample-now").unwrap();
                for be in tree.backends.iter_mut() {
                    assert_eq!(
                        be.recv_multicast(Duration::from_secs(10)).unwrap(),
                        b"sample-now"
                    );
                }
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_reduction_scaling,
    bench_fanout_tradeoff,
    bench_multicast
);
criterion_main!(benches);
