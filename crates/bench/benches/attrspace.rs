//! **B1 — Attribute-space microbenchmarks** (§2.1 / §3.2).
//!
//! The paper's design argues a general-purpose (attribute, value) space
//! is cheap enough to carry all RM↔RT coordination. These benches put
//! numbers on that claim for our implementation: put/get latency, the
//! blocking-get wake-up path, async subscription dispatch, and scaling
//! with space size and context count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tdp_core::{Role, TdpHandle, World};
use tdp_proto::ContextId;

const CTX: ContextId = ContextId(1);

fn pair(world: &World) -> (TdpHandle, TdpHandle) {
    let host = world.add_host();
    let rm = TdpHandle::init(world, host, CTX, "rm", Role::ResourceManager).unwrap();
    let rt = TdpHandle::init(world, host, CTX, "rt", Role::Tool).unwrap();
    (rm, rt)
}

fn bench_put_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("attrspace");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);

    let world = World::new();
    let (mut rm, mut rt) = pair(&world);
    rm.put("warm", "1").unwrap();

    g.bench_function("put", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            rm.put("bench_key", &i.to_string()).unwrap();
        });
    });

    g.bench_function("get_hit", |b| {
        b.iter(|| black_box(rt.get("bench_key").unwrap()));
    });

    g.bench_function("try_get_miss", |b| {
        b.iter(|| black_box(rt.try_get("never_put").is_err()));
    });

    // The Figure 6 path: a parked getter woken by a put, measured as
    // the full round trip (put on one handle, wake on the other thread).
    g.bench_function("blocking_get_wakeup", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for i in 0..iters {
                let key = format!("wake{i}");
                let world2 = world.clone();
                let key2 = key.clone();
                let waiter = std::thread::spawn(move || {
                    let host = world2.lass_addr(tdp_proto::HostId(0)).unwrap().host;
                    let mut rt2 =
                        TdpHandle::init(&world2, host, CTX, "waiter", Role::Tool).unwrap();
                    rt2.get(&key2).unwrap()
                });
                std::thread::sleep(Duration::from_micros(300));
                let t0 = std::time::Instant::now();
                rm.put(&key, "v").unwrap();
                waiter.join().unwrap();
                total += t0.elapsed();
            }
            total
        });
    });
    g.finish();
}

fn bench_space_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("attrspace_scaling");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for n in [10usize, 100, 1000] {
        let world = World::new();
        let (mut rm, mut rt) = pair(&world);
        for i in 0..n {
            rm.put(&format!("attr{i}"), "x").unwrap();
        }
        g.bench_with_input(BenchmarkId::new("get_among", n), &n, |b, &n| {
            b.iter(|| black_box(rt.get(&format!("attr{}", n / 2)).unwrap()));
        });
    }
    g.finish();
}

fn bench_context_scaling(c: &mut Criterion) {
    // An RM managing many RTs keeps one context per tool (§3.2); put
    // latency must not degrade with context count.
    let mut g = c.benchmark_group("attrspace_contexts");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for n in [1u64, 16, 128] {
        let world = World::new();
        let host = world.add_host();
        let mut handles: Vec<TdpHandle> = (0..n)
            .map(|i| {
                let mut h =
                    TdpHandle::init(&world, host, ContextId(i), "rm", Role::ResourceManager)
                        .unwrap();
                h.put("seed", "1").unwrap();
                h
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("put_with_contexts", n), &n, |b, _| {
            b.iter(|| handles[0].put("k", "v").unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_put_get,
    bench_space_scaling,
    bench_context_scaling
);
criterion_main!(benches);
