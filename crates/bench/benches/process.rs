//! **B2 — Process-management microbenchmarks** (§3.1).
//!
//! What does TDP's create-paused/attach/continue choreography cost
//! compared to a plain create-and-run? The paper's design bets the
//! overhead is negligible next to job runtimes; these benches measure
//! the absolute numbers on our substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use tdp_core::{Role, TdpCreate, TdpHandle, World};
use tdp_proto::{ContextId, HostId};
use tdp_simos::{fn_program, ExecImage};

const CTX: ContextId = ContextId(1);
const T: Duration = Duration::from_secs(5);

fn world_with_app() -> (World, HostId, TdpHandle) {
    let world = World::new();
    let host = world.add_host();
    world.os().fs().install_exec(
        host,
        "/bin/noop",
        ExecImage::new(
            ["main", "work"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| ctx.call("work", |ctx| ctx.compute(1)));
                    0
                })
            }),
        ),
    );
    let rm = TdpHandle::init(&world, host, CTX, "rm", Role::ResourceManager).unwrap();
    (world, host, rm)
}

fn bench_lifecycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("process");
    g.measurement_time(Duration::from_secs(3)).sample_size(25);

    // Case 1 (§2.2): create and start immediately, wait for exit.
    {
        let (_world, _host, mut rm) = world_with_app();
        g.bench_function("create_run_to_exit", |b| {
            b.iter(|| {
                let pid = rm.create_process(TdpCreate::new("/bin/noop")).unwrap();
                black_box(rm.wait_terminal(pid, T).unwrap());
            });
        });
    }

    // Case 2 (§2.2): create paused, attach, instrument, continue, exit —
    // the full TDP tool choreography.
    {
        let (_world, _host, mut rm) = world_with_app();
        g.bench_function("create_paused_attach_continue_to_exit", |b| {
            b.iter(|| {
                let pid = rm
                    .create_process(TdpCreate::new("/bin/noop").paused())
                    .unwrap();
                rm.attach(pid).unwrap();
                rm.arm_probe(pid, "work").unwrap();
                rm.continue_process(pid).unwrap();
                black_box(rm.wait_terminal(pid, T).unwrap());
                rm.detach(pid).unwrap_or(());
            });
        });
    }

    // Attach alone (case 3's acquisition step).
    {
        let (_world, _host, mut rm) = world_with_app();
        g.bench_function("attach_detach", |b| {
            let pid = rm
                .create_process(TdpCreate::new("/bin/noop").paused())
                .unwrap();
            b.iter(|| {
                rm.attach(pid).unwrap();
                rm.detach(pid).unwrap();
            });
            rm.kill_process(pid, 9).unwrap();
        });
    }

    // Pause/continue round trip on a paused-at-exec process.
    {
        let (world, _host, mut rm) = world_with_app();
        g.bench_function("pause_continue_roundtrip", |b| {
            let pid = rm
                .create_process(TdpCreate::new("/bin/noop").paused())
                .unwrap();
            // Move it out of Created into Running/Stopped cycling: the
            // body is done instantly, so use a long-running app instead.
            world.os().fs().install_exec(
                rm.host(),
                "/bin/long",
                ExecImage::from_fn(|_| {
                    fn_program(|ctx| {
                        ctx.sleep(Duration::from_secs(600));
                        0
                    })
                }),
            );
            let lp = rm.create_process(TdpCreate::new("/bin/long")).unwrap();
            b.iter(|| {
                rm.pause_process(lp).unwrap();
                rm.continue_process(lp).unwrap();
            });
            rm.kill_process(lp, 9).unwrap();
            rm.kill_process(pid, 9).unwrap();
        });
    }

    // Probe read while the target runs.
    {
        let (world, host, mut rm) = world_with_app();
        world.os().fs().install_exec(
            host,
            "/bin/churn",
            ExecImage::new(
                ["main", "spin"],
                Arc::new(|_| {
                    fn_program(|ctx| {
                        ctx.call("main", |ctx| {
                            for _ in 0..u64::MAX {
                                ctx.call("spin", |ctx| ctx.compute(1));
                            }
                        });
                        0
                    })
                }),
            ),
        );
        let pid = rm
            .create_process(TdpCreate::new("/bin/churn").paused())
            .unwrap();
        rm.attach(pid).unwrap();
        rm.arm_probe(pid, "spin").unwrap();
        rm.continue_process(pid).unwrap();
        g.bench_function("read_probes_live", |b| {
            b.iter(|| black_box(rm.read_probes(pid).unwrap()));
        });
        rm.kill_process(pid, 9).unwrap();
    }
    g.finish();
}

criterion_group!(benches, bench_lifecycle);
criterion_main!(benches);
