//! **B3 — Tool communication: direct vs proxied channels** (§2.4).
//!
//! TDP routes a tool daemon's front-end connection through the RM's
//! proxy when a firewall blocks the direct path. The design claim is
//! that the relay is a transparent drop-in; these benches measure the
//! cost of the transparency: connection setup and message round-trip
//! time, direct vs via-proxy.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tdp_netsim::{proxy, FirewallPolicy, Network};
use tdp_proto::{Addr, HostId};

struct Rig {
    net: Network,
    fe: HostId,
    exec: HostId,
    fe_addr: Addr,
    proxy_addr: Addr,
    _proxy: proxy::ProxyServer,
    _echo: std::thread::JoinHandle<()>,
}

/// Front-end echo server on the public side; exec host in a strict
/// zone; proxy on an authorized gateway.
fn rig() -> Rig {
    let net = Network::new();
    let fe = net.add_host();
    let zone = net.add_private_zone(FirewallPolicy::NAT); // direct outbound allowed too
    let exec = net.add_host_in(zone);
    let gw = net.add_host_in(zone);
    let listener = net.listen(fe, 2090).unwrap();
    let fe_addr = listener.local_addr();
    net.authorize_route(gw, fe_addr);
    let p = proxy::spawn(&net, gw, 9618).unwrap();
    let proxy_addr = p.addr();
    let echo = std::thread::spawn(move || {
        while let Ok(conn) = listener.accept() {
            std::thread::spawn(move || {
                let (tx, mut rx) = conn.split();
                while let Ok(chunk) = rx.recv() {
                    if tx.send_bytes(chunk).is_err() {
                        break;
                    }
                }
            });
        }
    });
    Rig {
        net,
        fe,
        exec,
        fe_addr,
        proxy_addr,
        _proxy: p,
        _echo: echo,
    }
}

fn bench_proxy(c: &mut Criterion) {
    let mut g = c.benchmark_group("tool_channel");
    g.measurement_time(Duration::from_secs(3)).sample_size(30);
    let r = rig();
    let _ = r.fe;

    g.bench_function("connect_direct", |b| {
        b.iter(|| black_box(r.net.connect(r.exec, r.fe_addr).unwrap()));
    });
    g.bench_function("connect_via_proxy", |b| {
        b.iter(|| black_box(proxy::connect_via(&r.net, r.exec, r.proxy_addr, r.fe_addr).unwrap()));
    });

    let payload = vec![0u8; 256];
    {
        let mut direct = r.net.connect(r.exec, r.fe_addr).unwrap();
        g.bench_function("roundtrip_direct_256B", |b| {
            b.iter(|| {
                direct.send(&payload).unwrap();
                black_box(direct.recv().unwrap());
            });
        });
    }
    {
        let mut proxied = proxy::connect_via(&r.net, r.exec, r.proxy_addr, r.fe_addr).unwrap();
        g.bench_function("roundtrip_proxied_256B", |b| {
            b.iter(|| {
                proxied.send(&payload).unwrap();
                black_box(proxied.recv().unwrap());
            });
        });
    }

    // Bulk throughput: 64 KiB in 1 KiB chunks, echoed back.
    let chunk = vec![0u8; 1024];
    {
        let mut direct = r.net.connect(r.exec, r.fe_addr).unwrap();
        g.bench_function("bulk64k_direct", |b| {
            b.iter(|| {
                for _ in 0..64 {
                    direct.send(&chunk).unwrap();
                }
                let mut got = 0usize;
                while got < 64 * 1024 {
                    got += direct.recv().unwrap().len();
                }
            });
        });
    }
    {
        let mut proxied = proxy::connect_via(&r.net, r.exec, r.proxy_addr, r.fe_addr).unwrap();
        g.bench_function("bulk64k_proxied", |b| {
            b.iter(|| {
                for _ in 0..64 {
                    proxied.send(&chunk).unwrap();
                }
                let mut got = 0usize;
                while got < 64 * 1024 {
                    got += proxied.recv().unwrap().len();
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_proxy);
criterion_main!(benches);
