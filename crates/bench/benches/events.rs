//! **B5 — Event notification** (§3.3).
//!
//! `tdp_service_event` drains pending callbacks at the daemon's safe
//! point. The design requires this to be cheap enough for a central
//! polling loop: these benches measure empty polls, single-callback
//! dispatch, and bulk drains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tdp_core::{Role, TdpHandle, World};
use tdp_proto::ContextId;

const CTX: ContextId = ContextId(1);

fn pair() -> (World, TdpHandle, TdpHandle) {
    let world = World::new();
    let host = world.add_host();
    let rm = TdpHandle::init(&world, host, CTX, "rm", Role::ResourceManager).unwrap();
    let rt = TdpHandle::init(&world, host, CTX, "rt", Role::Tool).unwrap();
    (world, rm, rt)
}

fn bench_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("events");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);

    // The idle poll: the cost a daemon pays every loop iteration when
    // nothing is pending.
    {
        let (_w, _rm, mut rt) = pair();
        g.bench_function("service_events_empty", |b| {
            b.iter(|| black_box(rt.service_events().unwrap()));
        });
    }

    // One async_get satisfied per iteration: register + put + drain.
    {
        let (_w, mut rm, mut rt) = pair();
        let hits = Arc::new(AtomicUsize::new(0));
        g.bench_function("async_get_roundtrip", |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let key = format!("k{i}");
                let h = hits.clone();
                rt.async_get(&key, move |_, _| {
                    h.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
                rm.put(&key, "v").unwrap();
                while rt.service_events().unwrap() == 0 {
                    std::hint::spin_loop();
                }
            });
        });
    }

    // async_put's deferred completion.
    {
        let (_w, mut rm, _rt) = pair();
        g.bench_function("async_put_with_completion", |b| {
            b.iter(|| {
                rm.async_put("k", "v", |_, _| {}).unwrap();
                while rm.service_events().unwrap() == 0 {
                    std::hint::spin_loop();
                }
            });
        });
    }

    // Bulk drain: n pending notifications serviced in one call.
    for n in [8usize, 64] {
        let (_w, mut rm, mut rt) = pair();
        g.bench_with_input(BenchmarkId::new("drain_pending", n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for round in 0..iters {
                    for i in 0..n {
                        rt.async_get(&format!("r{round}k{i}"), |_, _| {}).unwrap();
                    }
                    for i in 0..n {
                        rm.put(&format!("r{round}k{i}"), "v").unwrap();
                    }
                    // Let the notifications land.
                    let mut drained = 0;
                    let t0 = std::time::Instant::now();
                    while drained < n {
                        drained += rt.service_events().unwrap();
                    }
                    total += t0.elapsed();
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_events);
criterion_main!(benches);
