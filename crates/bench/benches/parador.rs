//! **B4 — Parador end-to-end** (§4.3).
//!
//! The system-level numbers: how long a Condor job takes unmonitored vs
//! with the full TDP + paradynd choreography (the "cost of
//! monitorability"), and how MPI-universe startup scales with rank
//! count. Absolute times are simulator times; the *ratios* are the
//! reproducible result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use tdp_condor::{CondorPool, JobState};
use tdp_core::World;
use tdp_mpi::{apps, MpiComm};
use tdp_paradyn::{paradynd_image, ParadynFrontend};
use tdp_simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(60);

fn app_image() -> ExecImage {
    ExecImage::new(
        ["main", "work"],
        Arc::new(|_| {
            fn_program(|ctx| {
                ctx.call("main", |ctx| {
                    for _ in 0..10 {
                        ctx.call("work", |ctx| ctx.compute(10));
                    }
                });
                0
            })
        }),
    )
}

fn bench_vanilla(c: &mut Criterion) {
    let mut g = c.benchmark_group("parador_vanilla");
    g.measurement_time(Duration::from_secs(10)).sample_size(10);

    // Baseline: the same job, no tool.
    {
        let world = World::new();
        let pool = CondorPool::build(&world, 1).unwrap();
        pool.install_everywhere("/bin/app", app_image());
        g.bench_function("job_without_tool", |b| {
            b.iter(|| {
                let job = pool.submit_str("executable = /bin/app\nqueue\n").unwrap();
                assert!(matches!(
                    pool.wait_job(job, T).unwrap(),
                    JobState::Completed(_)
                ));
            });
        });
    }

    // Monitored: +SuspendJobAtExec + paradynd, front-end auto-runs.
    {
        let world = World::new();
        let pool = CondorPool::build(&world, 1).unwrap();
        pool.install_everywhere("/bin/app", app_image());
        for h in pool.exec_hosts() {
            world
                .os()
                .fs()
                .install_exec(*h, "paradynd", paradynd_image(world.clone()));
        }
        let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();
        let submit = format!(
            "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"paradynd\"\n+ToolDaemonArgs = \"-m{} -p{} -P{} -a%pid -A\"\nqueue\n",
            fe.host().0,
            fe.control_addr().port.0,
            fe.data_addr().port.0
        );
        g.bench_function("job_with_paradynd", |b| {
            b.iter(|| {
                let job = pool.submit_str(&submit).unwrap();
                assert!(matches!(
                    pool.wait_job(job, T).unwrap(),
                    JobState::Completed(_)
                ));
            });
        });
    }
    g.finish();
}

fn bench_mpi_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("parador_mpi_startup");
    g.measurement_time(Duration::from_secs(10)).sample_size(10);
    for n in [2u32, 4, 8] {
        g.bench_with_input(BenchmarkId::new("ranks", n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    // Fresh world per run: MPI comm is per-job.
                    let world = World::new();
                    let pool = CondorPool::build(&world, n as usize).unwrap();
                    let comm = MpiComm::new(n);
                    pool.install_everywhere("ring", apps::ring(comm, 1, 1));
                    let t0 = std::time::Instant::now();
                    let job = pool
                        .submit_str(&format!(
                            "universe = MPI\nexecutable = ring\nmachine_count = {n}\nqueue\n"
                        ))
                        .unwrap();
                    assert!(matches!(
                        pool.wait_job(job, T).unwrap(),
                        JobState::Completed(_)
                    ));
                    total += t0.elapsed();
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_vanilla, bench_mpi_scaling);
criterion_main!(benches);
