//! # tdp-netsim — the simulated network substrate
//!
//! The TDP paper runs its daemons across a real cluster: front-end
//! machines on the public network, execution machines behind a firewall
//! or NAT (Figure 1). This crate reproduces exactly the properties that
//! TDP's communication layer depends on, in memory:
//!
//! * **hosts** with **ports**, **listeners** and bidirectional,
//!   stream-ordered **connections**;
//! * **network zones** — a public zone plus any number of private
//!   networks whose boundary *blocks* direct cross-zone connections
//!   according to a configurable [`FirewallPolicy`];
//! * **authorized routes** — the pre-existing permissions the resource
//!   manager already holds ("TDP does not require new proxy facilities
//!   with new permissions; it merely leverages existing ones", §2.4);
//! * a generic byte-relay [`proxy`] that an RM runs on such an
//!   authorized route so tools and application stdio can cross the
//!   boundary;
//! * **failure injection** (host kill, zone partition) and a simple
//!   **latency model** for benchmarks.
//!
//! Everything is synchronous and thread-based: a connection is a pair of
//! in-memory pipes guarded by `tdp-sync` mutex/condvar, so blocking
//! `recv` parks the calling thread exactly like a blocking `read(2)`.

pub mod chaos;
mod conn;
mod network;
pub mod proxy;

pub use chaos::{FaultEvent, FaultInjector, FaultLogEntry, FaultSchedule};
pub use conn::{Conn, ConnRx, ConnTx, Listener};
pub use network::{FirewallPolicy, Latency, NetStats, Network, ZoneId};
