//! Connections and listeners: in-memory duplex byte pipes with blocking
//! semantics matching a TCP socket.

use bytes::{Bytes, BytesMut};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdp_proto::{decode_frame, encode_frame, Addr, FrameError, Message, TdpError, TdpResult};
use tdp_sync::{Condvar, Mutex};

/// One direction of a connection: a queue of byte chunks with a
/// delivery timestamp (for latency simulation) and an EOF flag.
pub(crate) struct Pipe {
    state: Mutex<PipeState>,
    cv: Condvar,
    /// Total bytes ever enqueued, for [`crate::NetStats`].
    pub(crate) bytes: AtomicU64,
}

struct PipeState {
    queue: VecDeque<(Instant, Bytes)>,
    closed: bool,
}

impl Pipe {
    pub(crate) fn new() -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                queue: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            bytes: AtomicU64::new(0),
        })
    }

    fn push(&self, deliver_at: Instant, chunk: Bytes) -> TdpResult<()> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(TdpError::Disconnected);
        }
        self.bytes.fetch_add(chunk.len() as u64, Ordering::Relaxed);
        st.queue.push_back((deliver_at, chunk));
        drop(st);
        self.cv.notify_all();
        Ok(())
    }

    /// Pop the next chunk, honouring its delivery time. `None` deadline
    /// blocks forever.
    fn pop(&self, deadline: Option<Instant>) -> TdpResult<Bytes> {
        let mut st = self.state.lock();
        loop {
            if let Some(&(at, _)) = st.queue.front() {
                let now = Instant::now();
                if at <= now {
                    let (_, chunk) = st.queue.pop_front().expect("front checked");
                    return Ok(chunk);
                }
                // Wait until the chunk "arrives" (latency model) or the
                // caller's deadline, whichever is sooner.
                let wake = deadline.map_or(at, |d| d.min(at));
                if self.cv.wait_until(&mut st, wake).timed_out()
                    && deadline.is_some_and(|d| d <= Instant::now())
                    && at > Instant::now()
                {
                    return Err(TdpError::Timeout);
                }
                continue;
            }
            if st.closed {
                return Err(TdpError::Disconnected);
            }
            match deadline {
                Some(d) => {
                    if self.cv.wait_until(&mut st, d).timed_out() {
                        return Err(TdpError::Timeout);
                    }
                }
                None => self.cv.wait(&mut st),
            }
        }
    }

    fn try_pop(&self) -> Option<TdpResult<Bytes>> {
        let mut st = self.state.lock();
        if let Some(&(at, _)) = st.queue.front() {
            if at <= Instant::now() {
                return Some(Ok(st.queue.pop_front().expect("front checked").1));
            }
            return None; // still "in flight"
        }
        if st.closed {
            return Some(Err(TdpError::Disconnected));
        }
        None
    }

    pub(crate) fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        drop(st);
        self.cv.notify_all();
    }

    /// Closed and fully drained: nothing more will ever arrive.
    fn at_eof(&self) -> bool {
        let st = self.state.lock();
        st.closed && st.queue.is_empty()
    }

    /// Is there a deliverable chunk queued right now?
    fn readable(&self) -> bool {
        let st = self.state.lock();
        st.queue
            .front()
            .is_some_and(|&(at, _)| at <= Instant::now())
            || st.closed
    }
}

/// One endpoint of an established connection.
///
/// `send` is `&self` (multiple writers may share the endpoint behind an
/// `Arc`); `recv*` take `&mut self` because framed reads keep a
/// reassembly buffer. Closing either endpoint (or dropping it) delivers
/// EOF to the peer, like a TCP FIN.
pub struct Conn {
    pub(crate) tx: Arc<Pipe>,
    pub(crate) rx: Arc<Pipe>,
    local: Addr,
    peer: Addr,
    latency: Duration,
    read_buf: BytesMut,
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Conn({} <-> {})", self.local, self.peer)
    }
}

impl Conn {
    /// Create a connected pair directly, outside any [`crate::Network`].
    /// Useful for unit tests of protocol layers.
    pub fn pair() -> (Conn, Conn) {
        Self::pair_with(
            Addr::new(tdp_proto::HostId(0), 0),
            Addr::new(tdp_proto::HostId(0), 0),
            Duration::ZERO,
        )
    }

    pub(crate) fn pair_with(a: Addr, b: Addr, latency: Duration) -> (Conn, Conn) {
        let ab = Pipe::new();
        let ba = Pipe::new();
        (
            Conn {
                tx: ab.clone(),
                rx: ba.clone(),
                local: a,
                peer: b,
                latency,
                read_buf: BytesMut::new(),
            },
            Conn {
                tx: ba,
                rx: ab,
                local: b,
                peer: a,
                latency,
                read_buf: BytesMut::new(),
            },
        )
    }

    /// Local address of this endpoint.
    pub fn local_addr(&self) -> Addr {
        self.local
    }

    /// Address of the peer endpoint.
    pub fn peer_addr(&self) -> Addr {
        self.peer
    }

    /// Send a chunk of bytes. Ordered, reliable, never blocks (pipes are
    /// unbounded, as justified by TDP's small control-plane messages).
    pub fn send(&self, data: &[u8]) -> TdpResult<()> {
        self.tx
            .push(Instant::now() + self.latency, Bytes::copy_from_slice(data))
    }

    /// Send an owned chunk without copying.
    pub fn send_bytes(&self, data: Bytes) -> TdpResult<()> {
        self.tx.push(Instant::now() + self.latency, data)
    }

    /// Blocking receive of the next chunk.
    pub fn recv(&mut self) -> TdpResult<Bytes> {
        if !self.read_buf.is_empty() {
            return Ok(self.read_buf.split().freeze());
        }
        self.rx.pop(None)
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&mut self, timeout: Duration) -> TdpResult<Bytes> {
        if !self.read_buf.is_empty() {
            return Ok(self.read_buf.split().freeze());
        }
        self.rx.pop(Some(Instant::now() + timeout))
    }

    /// Non-blocking receive: `None` when nothing is deliverable yet.
    pub fn try_recv(&mut self) -> Option<TdpResult<Bytes>> {
        if !self.read_buf.is_empty() {
            return Some(Ok(self.read_buf.split().freeze()));
        }
        self.rx.try_pop()
    }

    /// Send one framed [`Message`].
    pub fn send_msg(&self, msg: &Message) -> TdpResult<()> {
        self.tx
            .push(Instant::now() + self.latency, encode_frame(msg))
    }

    /// Blocking receive of one framed [`Message`], reassembling partial
    /// chunks.
    pub fn recv_msg(&mut self) -> TdpResult<Message> {
        self.recv_msg_deadline(None)
    }

    /// Framed receive with a timeout.
    pub fn recv_msg_timeout(&mut self, timeout: Duration) -> TdpResult<Message> {
        self.recv_msg_deadline(Some(Instant::now() + timeout))
    }

    fn recv_msg_deadline(&mut self, deadline: Option<Instant>) -> TdpResult<Message> {
        loop {
            match decode_frame(&mut self.read_buf) {
                Ok(msg) => return Ok(msg),
                Err(FrameError::Incomplete) => {}
                Err(e) => return Err(TdpError::Protocol(e.to_string())),
            }
            let chunk = self.rx.pop(deadline)?;
            self.read_buf.extend_from_slice(&chunk);
        }
    }

    /// Non-blocking framed receive: `Ok(None)` when no complete message
    /// is deliverable yet.
    pub fn try_recv_msg(&mut self) -> TdpResult<Option<Message>> {
        loop {
            match decode_frame(&mut self.read_buf) {
                Ok(msg) => return Ok(Some(msg)),
                Err(FrameError::Incomplete) => {}
                Err(e) => return Err(TdpError::Protocol(e.to_string())),
            }
            match self.rx.try_pop() {
                Some(Ok(chunk)) => self.read_buf.extend_from_slice(&chunk),
                Some(Err(e)) => return Err(e),
                None => return Ok(None),
            }
        }
    }

    /// Push bytes back to the front of the read buffer (they will be the
    /// next bytes returned by any `recv*`). Used by protocol code that
    /// over-reads past its header.
    pub fn unread(&mut self, data: &[u8]) {
        let mut buf = BytesMut::with_capacity(data.len() + self.read_buf.len());
        buf.extend_from_slice(data);
        buf.extend_from_slice(&self.read_buf);
        self.read_buf = buf;
    }

    /// Is the peer gone (and no buffered data remains)?
    pub fn is_disconnected(&self) -> bool {
        self.read_buf.is_empty() && self.rx.at_eof()
    }

    /// True when a `recv` would not block.
    pub fn readable(&self) -> bool {
        !self.read_buf.is_empty() || self.rx.readable()
    }

    /// Half-close: the peer sees EOF after draining. Further sends fail.
    pub fn close(&self) {
        self.tx.close();
        self.rx.close();
    }

    /// Split into independently owned send and receive halves, so two
    /// threads can pump opposite directions (as the proxy relay does).
    pub fn split(mut self) -> (ConnTx, ConnRx) {
        let tx = ConnTx {
            tx: self.tx.clone(),
            latency: self.latency,
        };
        let rx = ConnRx {
            rx: self.rx.clone(),
            read_buf: std::mem::take(&mut self.read_buf),
        };
        // Suppress Conn::drop's close of both pipes: the halves now own
        // shutdown (each closes its pipe when dropped).
        std::mem::forget(self);
        (tx, rx)
    }
}

/// Send half of a split [`Conn`].
pub struct ConnTx {
    tx: Arc<Pipe>,
    latency: Duration,
}

impl ConnTx {
    pub fn send(&self, data: &[u8]) -> TdpResult<()> {
        self.tx
            .push(Instant::now() + self.latency, Bytes::copy_from_slice(data))
    }

    pub fn send_bytes(&self, data: Bytes) -> TdpResult<()> {
        self.tx.push(Instant::now() + self.latency, data)
    }

    pub fn send_msg(&self, msg: &Message) -> TdpResult<()> {
        self.tx
            .push(Instant::now() + self.latency, encode_frame(msg))
    }

    /// Signal EOF to the peer.
    pub fn close(&self) {
        self.tx.close();
    }
}

impl Drop for ConnTx {
    fn drop(&mut self) {
        self.tx.close();
    }
}

/// Receive half of a split [`Conn`].
pub struct ConnRx {
    rx: Arc<Pipe>,
    read_buf: BytesMut,
}

impl ConnRx {
    pub fn recv(&mut self) -> TdpResult<Bytes> {
        if !self.read_buf.is_empty() {
            return Ok(self.read_buf.split().freeze());
        }
        self.rx.pop(None)
    }

    pub fn recv_timeout(&mut self, timeout: Duration) -> TdpResult<Bytes> {
        if !self.read_buf.is_empty() {
            return Ok(self.read_buf.split().freeze());
        }
        self.rx.pop(Some(Instant::now() + timeout))
    }

    pub fn recv_msg(&mut self) -> TdpResult<Message> {
        self.recv_msg_deadline(None)
    }

    /// Framed receive with a timeout.
    pub fn recv_msg_timeout(&mut self, timeout: Duration) -> TdpResult<Message> {
        self.recv_msg_deadline(Some(Instant::now() + timeout))
    }

    fn recv_msg_deadline(&mut self, deadline: Option<Instant>) -> TdpResult<Message> {
        loop {
            match decode_frame(&mut self.read_buf) {
                Ok(msg) => return Ok(msg),
                Err(FrameError::Incomplete) => {}
                Err(e) => return Err(TdpError::Protocol(e.to_string())),
            }
            let chunk = self.rx.pop(deadline)?;
            self.read_buf.extend_from_slice(&chunk);
        }
    }

    /// Non-blocking framed receive: `Ok(None)` when no complete message
    /// is deliverable yet.
    pub fn try_recv_msg(&mut self) -> TdpResult<Option<Message>> {
        loop {
            match decode_frame(&mut self.read_buf) {
                Ok(msg) => return Ok(Some(msg)),
                Err(FrameError::Incomplete) => {}
                Err(e) => return Err(TdpError::Protocol(e.to_string())),
            }
            match self.rx.try_pop() {
                Some(Ok(chunk)) => self.read_buf.extend_from_slice(&chunk),
                Some(Err(e)) => return Err(e),
                None => return Ok(None),
            }
        }
    }
}

impl Drop for ConnRx {
    fn drop(&mut self) {
        self.rx.close();
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        self.close();
    }
}

/// A passive listener bound to `(host, port)`.
///
/// Produced by [`crate::Network::listen`]; yields one [`Conn`] per
/// accepted connection.
pub struct Listener {
    pub(crate) addr: Addr,
    pub(crate) incoming: crossbeam::channel::Receiver<Conn>,
}

impl Listener {
    /// Address this listener is bound to.
    pub fn local_addr(&self) -> Addr {
        self.addr
    }

    /// Block until the next inbound connection.
    pub fn accept(&self) -> TdpResult<Conn> {
        self.incoming.recv().map_err(|_| TdpError::Disconnected)
    }

    /// Accept with a timeout.
    pub fn accept_timeout(&self, timeout: Duration) -> TdpResult<Conn> {
        match self.incoming.recv_timeout(timeout) {
            Ok(c) => Ok(c),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(TdpError::Timeout),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(TdpError::Disconnected),
        }
    }

    /// Non-blocking accept.
    pub fn try_accept(&self) -> Option<Conn> {
        self.incoming.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_proto::ids::ContextId;

    #[test]
    fn pair_roundtrip() {
        let (a, mut b) = Conn::pair();
        a.send(b"hello").unwrap();
        assert_eq!(&b.recv().unwrap()[..], b"hello");
    }

    #[test]
    fn ordered_delivery() {
        let (a, mut b) = Conn::pair();
        for i in 0..100u8 {
            a.send(&[i]).unwrap();
        }
        let mut got = Vec::new();
        while got.len() < 100 {
            got.extend_from_slice(&b.recv().unwrap());
        }
        assert_eq!(got, (0..100).collect::<Vec<u8>>());
    }

    #[test]
    fn eof_on_drop() {
        let (a, mut b) = Conn::pair();
        a.send(b"x").unwrap();
        drop(a);
        assert_eq!(&b.recv().unwrap()[..], b"x");
        assert_eq!(b.recv(), Err(TdpError::Disconnected));
        assert!(b.is_disconnected());
    }

    #[test]
    fn send_after_peer_close_fails() {
        let (a, b) = Conn::pair();
        b.close();
        assert_eq!(a.send(b"x"), Err(TdpError::Disconnected));
    }

    #[test]
    fn recv_timeout_fires() {
        let (_a, mut b) = Conn::pair();
        let t0 = Instant::now();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(30)),
            Err(TdpError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn try_recv_nonblocking() {
        let (a, mut b) = Conn::pair();
        assert!(b.try_recv().is_none());
        a.send(b"1").unwrap();
        assert_eq!(&b.try_recv().unwrap().unwrap()[..], b"1");
    }

    #[test]
    fn framed_messages_cross_chunk_boundaries() {
        let (a, mut b) = Conn::pair();
        let msg = Message::Put {
            ctx: ContextId(1),
            key: "pid".into(),
            value: "42".into(),
        };
        let frame = encode_frame(&msg);
        // Send the frame one byte at a time.
        for byte in frame.iter() {
            a.send(&[*byte]).unwrap();
        }
        assert_eq!(b.recv_msg().unwrap(), msg);
    }

    #[test]
    fn framed_messages_coalesced_in_one_chunk() {
        let (a, mut b) = Conn::pair();
        let m1 = Message::Join { ctx: ContextId(1) };
        let m2 = Message::Leave { ctx: ContextId(1) };
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&encode_frame(&m1));
        buf.extend_from_slice(&encode_frame(&m2));
        a.send(&buf).unwrap();
        assert_eq!(b.recv_msg().unwrap(), m1);
        assert_eq!(b.recv_msg().unwrap(), m2);
    }

    #[test]
    fn cross_thread_blocking_recv() {
        let (a, mut b) = Conn::pair();
        let h = std::thread::spawn(move || b.recv().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        a.send(b"late").unwrap();
        assert_eq!(&h.join().unwrap()[..], b"late");
    }

    #[test]
    fn latency_delays_delivery() {
        let (a, mut b) = Conn::pair_with(
            Addr::new(tdp_proto::HostId(0), 1),
            Addr::new(tdp_proto::HostId(1), 2),
            Duration::from_millis(40),
        );
        let t0 = Instant::now();
        a.send(b"slow").unwrap();
        assert!(b.try_recv().is_none(), "chunk must still be in flight");
        assert_eq!(&b.recv().unwrap()[..], b"slow");
        assert!(t0.elapsed() >= Duration::from_millis(35));
    }

    #[test]
    fn readable_reflects_state() {
        let (a, mut b) = Conn::pair();
        assert!(!b.readable());
        a.send(b"x").unwrap();
        assert!(b.readable());
        b.recv().unwrap();
        assert!(!b.readable());
    }
}
