//! The byte-relay proxy of §2.4.
//!
//! "Process managers, such as Condor and Globus, provide proxy mechanisms
//! to forward their connections in and out of a private network. TDP
//! provides a standard interface to these mechanisms. … If the private
//! networks block such connections, then the host/port number will be
//! that of the RM's proxy, which will be responsible for establishing the
//! connection and forwarding inbound and outbound messages."
//!
//! The wire protocol is a one-line CONNECT header (`CONNECT host:port\n`)
//! answered with `OK\n` or `ERR <reason>\n`, followed by transparent
//! bidirectional byte relaying. The proxy connects upstream *from its own
//! host*, so it crosses a firewall on whatever routes its host has been
//! authorized for — TDP adds no new permissions.

use crate::conn::Conn;
use crate::network::Network;
use std::thread;
use tdp_proto::{Addr, HostId, TdpError, TdpResult};

/// Running proxy server. Dropping the handle (or calling
/// [`ProxyServer::shutdown`]) stops accepting new connections; in-flight
/// relays drain and finish.
pub struct ProxyServer {
    addr: Addr,
    net: Network,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ProxyServer {
    /// Address clients should connect to.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Stop accepting new connections.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.net.unbind(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ProxyServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Spawn a relay proxy on `(host, port)` (0 = ephemeral).
pub fn spawn(net: &Network, host: HostId, port: u16) -> TdpResult<ProxyServer> {
    let listener = net.listen(host, port)?;
    let addr = listener.local_addr();
    let net2 = net.clone();
    let accept_thread = thread::Builder::new()
        .name(format!("proxy-{addr}"))
        .spawn(move || {
            while let Ok(client) = listener.accept() {
                let net = net2.clone();
                thread::Builder::new()
                    .name(format!("proxy-relay-{addr}"))
                    .spawn(move || relay_session(net, host, client))
                    .expect("spawn relay thread");
            }
        })
        .expect("spawn proxy accept thread");
    Ok(ProxyServer {
        addr,
        net: net.clone(),
        accept_thread: Some(accept_thread),
    })
}

/// Handle one client: read the CONNECT header, dial upstream from the
/// proxy's host, then pump bytes both ways until either side closes.
fn relay_session(net: Network, proxy_host: HostId, mut client: Conn) {
    let header = match read_line(&mut client) {
        Ok(h) => h,
        Err(_) => return,
    };
    let target = match parse_connect(&header) {
        Some(t) => t,
        None => {
            let _ = client.send(b"ERR bad connect header\n");
            return;
        }
    };
    let upstream = match net.connect(proxy_host, target) {
        Ok(c) => c,
        Err(e) => {
            let _ = client.send(format!("ERR {e}\n").as_bytes());
            return;
        }
    };
    if client.send(b"OK\n").is_err() {
        return;
    }
    let (ctx, crx) = client.split();
    let (utx, urx) = upstream.split();
    let pump_up = thread::Builder::new()
        .name("netsim-proxy-pump".into())
        .spawn(move || pump(crx, utx))
        .expect("spawn proxy pump");
    pump(urx, ctx);
    let _ = pump_up.join();
}

fn pump(mut from: crate::conn::ConnRx, to: crate::conn::ConnTx) {
    while let Ok(chunk) = from.recv() {
        if to.send_bytes(chunk).is_err() {
            break;
        }
    }
    to.close();
}

fn read_line(conn: &mut Conn) -> TdpResult<String> {
    let mut line = Vec::new();
    loop {
        let chunk = conn.recv()?;
        // Headers are short; any bytes past the newline belong to the
        // relayed stream and must not be lost.
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&chunk[..pos]);
            let rest = &chunk[pos + 1..];
            if !rest.is_empty() {
                conn.unread(rest);
            }
            return String::from_utf8(line)
                .map_err(|_| TdpError::Protocol("non-utf8 header".into()));
        }
        line.extend_from_slice(&chunk);
        if line.len() > 256 {
            return Err(TdpError::Protocol("connect header too long".into()));
        }
    }
}

fn parse_connect(line: &str) -> Option<Addr> {
    let rest = line.strip_prefix("CONNECT ")?;
    Addr::parse(rest.trim())
}

/// Client side: open a connection to `target` via the proxy at `proxy`.
/// Returns a [`Conn`] that behaves exactly like a direct connection.
pub fn connect_via(net: &Network, from: HostId, proxy: Addr, target: Addr) -> TdpResult<Conn> {
    let mut conn = net.connect(from, proxy)?;
    conn.send(format!("CONNECT {}\n", target.to_attr_value()).as_bytes())?;
    let reply = read_line(&mut conn)?;
    if reply == "OK" {
        Ok(conn)
    } else if let Some(e) = reply.strip_prefix("ERR ") {
        Err(TdpError::Substrate(format!("proxy: {e}")))
    } else {
        Err(TdpError::Protocol(format!("bad proxy reply: {reply:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::FirewallPolicy;
    use std::time::Duration;

    /// Front-end outside, execution host inside a strict firewall; only
    /// the proxy's host has an authorized route out — the Figure 1 shape.
    fn firewalled_world() -> (Network, HostId, HostId, HostId) {
        let net = Network::new();
        let fe = net.add_host(); // front-end (public)
        let zone = net.add_private_zone(FirewallPolicy::STRICT);
        let exec = net.add_host_in(zone); // execution host
        let gw = net.add_host_in(zone); // gateway host running the RM proxy
        (net, fe, exec, gw)
    }

    #[test]
    fn relay_end_to_end() {
        let (net, fe, exec, gw) = firewalled_world();
        // Front-end listener the tool daemon must reach.
        let fe_listener = net.listen(fe, 2090).unwrap();
        let fe_addr = Addr::new(fe, 2090);
        // Direct connection is blocked by the firewall...
        assert!(net.connect(exec, fe_addr).is_err());
        // ...but the gateway has a pre-existing authorized route.
        net.authorize_route(gw, fe_addr);
        let proxy = spawn(&net, gw, 9618).unwrap();
        let mut c = connect_via(&net, exec, proxy.addr(), fe_addr).unwrap();
        let mut s = fe_listener.accept().unwrap();
        c.send(b"paradynd->frontend").unwrap();
        assert_eq!(&s.recv().unwrap()[..], b"paradynd->frontend");
        s.send(b"frontend->paradynd").unwrap();
        assert_eq!(&c.recv().unwrap()[..], b"frontend->paradynd");
    }

    #[test]
    fn relay_is_bidirectional_and_ordered() {
        let (net, fe, exec, gw) = firewalled_world();
        let fe_listener = net.listen(fe, 2090).unwrap();
        let fe_addr = Addr::new(fe, 2090);
        net.authorize_route(gw, fe_addr);
        let proxy = spawn(&net, gw, 0).unwrap();
        let mut c = connect_via(&net, exec, proxy.addr(), fe_addr).unwrap();
        let mut s = fe_listener.accept().unwrap();
        for i in 0..50u8 {
            c.send(&[i]).unwrap();
            s.send(&[100 + i]).unwrap();
        }
        let mut from_c = Vec::new();
        while from_c.len() < 50 {
            from_c.extend_from_slice(&s.recv().unwrap());
        }
        assert_eq!(from_c, (0..50).collect::<Vec<u8>>());
        let mut from_s = Vec::new();
        while from_s.len() < 50 {
            from_s.extend_from_slice(&c.recv().unwrap());
        }
        assert_eq!(from_s, (100..150).collect::<Vec<u8>>());
    }

    #[test]
    fn proxy_reports_unreachable_target() {
        let (net, fe, exec, gw) = firewalled_world();
        let target = Addr::new(fe, 4444); // nothing listening
        net.authorize_route(gw, target);
        let proxy = spawn(&net, gw, 0).unwrap();
        let err = connect_via(&net, exec, proxy.addr(), target).unwrap_err();
        assert!(matches!(err, TdpError::Substrate(_)), "{err}");
    }

    #[test]
    fn proxy_without_route_cannot_cross() {
        let (net, fe, exec, gw) = firewalled_world();
        let _l = net.listen(fe, 2090).unwrap();
        let proxy = spawn(&net, gw, 0).unwrap();
        // No authorize_route for gw: the proxy itself is firewalled.
        let err = connect_via(&net, exec, proxy.addr(), Addr::new(fe, 2090)).unwrap_err();
        assert!(matches!(err, TdpError::Substrate(_)));
    }

    #[test]
    fn eof_propagates_through_relay() {
        let (net, fe, exec, gw) = firewalled_world();
        let fe_listener = net.listen(fe, 2090).unwrap();
        let fe_addr = Addr::new(fe, 2090);
        net.authorize_route(gw, fe_addr);
        let proxy = spawn(&net, gw, 0).unwrap();
        let c = connect_via(&net, exec, proxy.addr(), fe_addr).unwrap();
        let mut s = fe_listener.accept().unwrap();
        c.send(b"bye").unwrap();
        drop(c);
        assert_eq!(&s.recv().unwrap()[..], b"bye");
        assert_eq!(
            s.recv_timeout(Duration::from_secs(2)),
            Err(TdpError::Disconnected)
        );
    }

    #[test]
    fn data_sent_with_header_is_not_lost() {
        // A client may coalesce the CONNECT header and first payload
        // bytes into one chunk; the proxy must forward the payload.
        let (net, fe, exec, gw) = firewalled_world();
        let fe_listener = net.listen(fe, 2090).unwrap();
        let fe_addr = Addr::new(fe, 2090);
        net.authorize_route(gw, fe_addr);
        let proxy = spawn(&net, gw, 0).unwrap();
        let mut raw = net.connect(exec, proxy.addr()).unwrap();
        raw.send(format!("CONNECT {}\nEARLY", fe_addr.to_attr_value()).as_bytes())
            .unwrap();
        let ok = raw.recv().unwrap();
        assert!(ok.starts_with(b"OK\n"));
        let mut s = fe_listener.accept().unwrap();
        assert_eq!(
            &s.recv_timeout(Duration::from_secs(2)).unwrap()[..],
            b"EARLY"
        );
    }

    #[test]
    fn bad_header_rejected() {
        let (net, _fe, exec, gw) = firewalled_world();
        let proxy = spawn(&net, gw, 0).unwrap();
        let mut raw = net.connect(exec, proxy.addr()).unwrap();
        raw.send(b"HELLO?\n").unwrap();
        let reply = raw.recv().unwrap();
        assert!(reply.starts_with(b"ERR"));
    }

    #[test]
    fn shutdown_stops_accepting() {
        let (net, _fe, exec, gw) = firewalled_world();
        let proxy = spawn(&net, gw, 9618).unwrap();
        let addr = proxy.addr();
        proxy.shutdown();
        assert!(net.connect(exec, addr).is_err());
    }
}
