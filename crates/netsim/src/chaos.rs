//! Scriptable fault schedules — the chaos layer of the soak harness.
//!
//! A [`FaultSchedule`] is a timeline of [`FaultEvent`]s at offsets from
//! injection start. The [`FaultInjector`] replays it on a background
//! thread against an arbitrary `apply` callback, so layers above the
//! network (the `World`, which also owns LASS/CASS processes) can
//! interpret events the fabric alone cannot, via [`FaultEvent::Custom`].
//! Network-level events have a direct interpretation here in
//! [`Network::apply_fault`].
//!
//! The injector waits between events on a channel, not a sleep, so
//! [`FaultInjector::stop`] cancels the remainder of a schedule promptly.

use crate::network::{Network, ZoneId};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tdp_proto::HostId;
use tdp_sync::Mutex;

/// One injected fault (or repair). `Custom` strings are interpreted by
/// whatever `apply` callback the injector was started with; by
/// convention the `World` understands `kill-lass:<host>` and
/// `kill-cass`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    KillHost(HostId),
    ReviveHost(HostId),
    Partition(ZoneId, ZoneId),
    Heal(ZoneId, ZoneId),
    Custom(String),
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::KillHost(h) => write!(f, "kill-host {h}"),
            FaultEvent::ReviveHost(h) => write!(f, "revive-host {h}"),
            FaultEvent::Partition(a, b) => write!(f, "partition {}<->{}", a.0, b.0),
            FaultEvent::Heal(a, b) => write!(f, "heal {}<->{}", a.0, b.0),
            FaultEvent::Custom(s) => write!(f, "custom {s}"),
        }
    }
}

/// A timeline of faults at offsets from injection start. Events fire in
/// offset order regardless of insertion order.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<(Duration, FaultEvent)>,
}

impl FaultSchedule {
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Builder-style: add an event at `offset` from start.
    pub fn at(mut self, offset: Duration, event: FaultEvent) -> FaultSchedule {
        self.push(offset, event);
        self
    }

    pub fn push(&mut self, offset: Duration, event: FaultEvent) {
        let idx = self.events.partition_point(|(off, _)| *off <= offset);
        self.events.insert(idx, (offset, event));
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total span of the schedule (offset of the last event).
    pub fn span(&self) -> Duration {
        self.events.last().map(|(off, _)| *off).unwrap_or_default()
    }

    pub fn events(&self) -> &[(Duration, FaultEvent)] {
        &self.events
    }
}

/// A line in the injector's timeline log: when (offset from start) an
/// event actually fired, and its description.
pub type FaultLogEntry = (Duration, String);

/// Replays a [`FaultSchedule`] on a background thread.
pub struct FaultInjector {
    handle: Option<JoinHandle<()>>,
    stop_tx: Sender<()>,
    log: Arc<Mutex<Vec<FaultLogEntry>>>,
}

impl FaultInjector {
    /// Start replaying `schedule`, delivering each event to `apply`.
    pub fn start<F>(schedule: FaultSchedule, mut apply: F) -> FaultInjector
    where
        F: FnMut(&FaultEvent) + Send + 'static,
    {
        let (stop_tx, stop_rx): (Sender<()>, Receiver<()>) = bounded(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let handle = std::thread::Builder::new()
            .name("chaos-injector".into())
            .spawn(move || {
                let start = Instant::now();
                for (offset, event) in schedule.events {
                    let now = start.elapsed();
                    if offset > now {
                        // Waiting on the stop channel doubles as the
                        // inter-event delay; a stop message (or the
                        // injector handle dropping) cancels the rest
                        // of the schedule.
                        match stop_rx.recv_timeout(offset - now) {
                            Err(RecvTimeoutError::Timeout) => {}
                            _ => return,
                        }
                    }
                    apply(&event);
                    log2.lock().push((start.elapsed(), event.to_string()));
                }
            })
            .expect("spawn chaos-injector");
        FaultInjector {
            handle: Some(handle),
            stop_tx,
            log,
        }
    }

    /// Convenience: replay against a [`Network`], ignoring `Custom`
    /// events (use a closure over [`Network::apply_fault`] plus your own
    /// dispatch when customs matter).
    pub fn start_on_network(schedule: FaultSchedule, net: Network) -> FaultInjector {
        FaultInjector::start(schedule, move |ev| net.apply_fault(ev))
    }

    /// Wait for the whole schedule to finish; returns the timeline of
    /// events that fired.
    pub fn join(mut self) -> Vec<FaultLogEntry> {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        std::mem::take(&mut *self.log.lock())
    }

    /// Cancel any remaining events and return the timeline so far.
    pub fn stop(mut self) -> Vec<FaultLogEntry> {
        let _ = self.stop_tx.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        std::mem::take(&mut *self.log.lock())
    }

    /// Snapshot of the events fired so far, without waiting.
    pub fn log_so_far(&self) -> Vec<FaultLogEntry> {
        self.log.lock().clone()
    }
}

impl Drop for FaultInjector {
    fn drop(&mut self) {
        let _ = self.stop_tx.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Network {
    /// Apply the network-level interpretation of a fault event.
    /// `Custom` events are not the fabric's to interpret and are
    /// ignored.
    pub fn apply_fault(&self, event: &FaultEvent) {
        match event {
            FaultEvent::KillHost(h) => self.kill_host(*h),
            FaultEvent::ReviveHost(h) => self.revive_host(*h),
            FaultEvent::Partition(a, b) => self.partition(*a, *b),
            FaultEvent::Heal(a, b) => self.heal_partition(*a, *b),
            FaultEvent::Custom(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_proto::Addr;

    #[test]
    fn schedule_orders_by_offset() {
        let s = FaultSchedule::new()
            .at(Duration::from_millis(20), FaultEvent::KillHost(HostId(1)))
            .at(Duration::from_millis(5), FaultEvent::Custom("x".into()))
            .at(Duration::from_millis(20), FaultEvent::ReviveHost(HostId(1)));
        let offs: Vec<_> = s.events().iter().map(|(o, _)| o.as_millis()).collect();
        assert_eq!(offs, vec![5, 20, 20]);
        // Equal offsets keep insertion order.
        assert_eq!(s.events()[1].1, FaultEvent::KillHost(HostId(1)));
        assert_eq!(s.span(), Duration::from_millis(20));
    }

    #[test]
    fn injector_replays_against_network() {
        let net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let _l = net.listen(b, 7).unwrap();
        let sched = FaultSchedule::new()
            .at(Duration::ZERO, FaultEvent::KillHost(b))
            .at(Duration::from_millis(10), FaultEvent::ReviveHost(b));
        let log = FaultInjector::start_on_network(sched, net.clone()).join();
        assert_eq!(log.len(), 2);
        assert!(net.host_alive(b));
        // Listener died with the host; the port is free again.
        assert!(net.connect(a, Addr::new(b, 7)).is_err());
        assert!(net.listen(b, 7).is_ok());
    }

    #[test]
    fn stop_cancels_remaining_events() {
        let flag = Arc::new(Mutex::new(0u32));
        let f2 = Arc::clone(&flag);
        let sched = FaultSchedule::new()
            .at(Duration::ZERO, FaultEvent::Custom("now".into()))
            .at(Duration::from_secs(30), FaultEvent::Custom("never".into()));
        let inj = FaultInjector::start(sched, move |_| *f2.lock() += 1);
        // The first event fires immediately; wait for it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while inj.log_so_far().is_empty() {
            assert!(Instant::now() < deadline, "first event never fired");
            std::thread::park_timeout(Duration::from_millis(1));
        }
        let log = inj.stop();
        assert_eq!(log.len(), 1, "{log:?}");
        assert_eq!(*flag.lock(), 1);
    }
}
