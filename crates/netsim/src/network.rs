//! The network fabric: hosts, zones, firewalls, routing and failure
//! injection.

use crate::conn::{Conn, Listener, Pipe};
use crossbeam::channel::Sender;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;
use tdp_proto::{Addr, HostId, Port, TdpError, TdpResult};
use tdp_sync::RwLock;

/// Per-listener accept backlog (the simulated SOMAXCONN). `connect`
/// returns `ConnectionRefused` once it fills.
const BACKLOG: usize = 128;

/// A network zone. Zone 0 is the public network; every
/// [`Network::add_private_zone`] call creates a firewalled private
/// network (Figure 1's "Remote Host" side of the firewall).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZoneId(pub u32);

impl ZoneId {
    /// The public network.
    pub const PUBLIC: ZoneId = ZoneId(0);
}

/// What a private zone's boundary permits, mirroring the two real-world
/// cases in §2.4 of the paper: NAT (outbound allowed, inbound blocked)
/// and strict firewall (both blocked — all traffic must use the resource
/// manager's authorized routes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FirewallPolicy {
    /// May a host inside this zone open a connection to an outside
    /// address?
    pub allow_outbound: bool,
    /// May an outside host open a connection to an address inside?
    pub allow_inbound: bool,
}

impl FirewallPolicy {
    /// NAT-like: outbound permitted, inbound blocked.
    pub const NAT: FirewallPolicy = FirewallPolicy {
        allow_outbound: true,
        allow_inbound: false,
    };
    /// Strict firewall: nothing crosses without an authorized route.
    pub const STRICT: FirewallPolicy = FirewallPolicy {
        allow_outbound: false,
        allow_inbound: false,
    };
    /// No restrictions (useful in tests).
    pub const OPEN: FirewallPolicy = FirewallPolicy {
        allow_outbound: true,
        allow_inbound: true,
    };
}

/// Latency model applied to every connection at establishment time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Latency {
    /// Delay for traffic between hosts in the same zone.
    pub local: Duration,
    /// Delay for traffic crossing a zone boundary.
    pub cross_zone: Duration,
}

/// Counters for benchmark reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetStats {
    pub connections_opened: u64,
    pub connections_blocked: u64,
}

struct HostEntry {
    zone: ZoneId,
    alive: bool,
    listeners: HashMap<Port, Sender<Conn>>,
    /// Pipes of live connections touching this host, so a host kill can
    /// sever them.
    pipes: Vec<Weak<Pipe>>,
    next_ephemeral: u16,
}

struct ZoneEntry {
    policy: FirewallPolicy,
    /// Zones currently partitioned away from this one.
    partitioned: HashSet<ZoneId>,
}

struct NetInner {
    hosts: RwLock<HashMap<HostId, HostEntry>>,
    zones: RwLock<HashMap<ZoneId, ZoneEntry>>,
    /// Routes the resource manager is already authorized to use across
    /// zone boundaries (§2.4: TDP "merely leverages existing" proxy
    /// permissions). `(from_host, to_addr)`.
    routes: RwLock<HashSet<(HostId, Addr)>>,
    latency: RwLock<Latency>,
    stats: RwLock<NetStats>,
    next_host: AtomicU32,
    next_zone: AtomicU32,
}

/// Handle to the simulated network. Cheap to clone; all clones view the
/// same fabric.
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetInner>,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// Create a fabric containing only the empty public zone.
    pub fn new() -> Network {
        let zones = HashMap::from([(
            ZoneId::PUBLIC,
            ZoneEntry {
                policy: FirewallPolicy::OPEN,
                partitioned: HashSet::new(),
            },
        )]);
        Network {
            inner: Arc::new(NetInner {
                hosts: RwLock::new(HashMap::new()),
                zones: RwLock::new(zones),
                routes: RwLock::new(HashSet::new()),
                latency: RwLock::new(Latency::default()),
                stats: RwLock::new(NetStats::default()),
                next_host: AtomicU32::new(0),
                next_zone: AtomicU32::new(1),
            }),
        }
    }

    /// Add a host to the public zone.
    pub fn add_host(&self) -> HostId {
        self.add_host_in(ZoneId::PUBLIC)
    }

    /// Add a host inside the given zone.
    pub fn add_host_in(&self, zone: ZoneId) -> HostId {
        let id = HostId(self.inner.next_host.fetch_add(1, Ordering::Relaxed));
        self.inner.hosts.write().insert(
            id,
            HostEntry {
                zone,
                alive: true,
                listeners: HashMap::new(),
                pipes: Vec::new(),
                next_ephemeral: 49152,
            },
        );
        id
    }

    /// Create a private zone with the given firewall policy.
    pub fn add_private_zone(&self, policy: FirewallPolicy) -> ZoneId {
        let id = ZoneId(self.inner.next_zone.fetch_add(1, Ordering::Relaxed));
        self.inner.zones.write().insert(
            id,
            ZoneEntry {
                policy,
                partitioned: HashSet::new(),
            },
        );
        id
    }

    /// Zone a host lives in.
    pub fn zone_of(&self, host: HostId) -> TdpResult<ZoneId> {
        self.inner
            .hosts
            .read()
            .get(&host)
            .map(|h| h.zone)
            .ok_or(TdpError::NoSuchHost(host))
    }

    /// Grant `from` permission to connect to `to` across any firewall —
    /// the pre-existing resource-manager route of §2.4.
    pub fn authorize_route(&self, from: HostId, to: Addr) {
        self.inner.routes.write().insert((from, to));
    }

    /// Revoke a previously authorized route.
    pub fn revoke_route(&self, from: HostId, to: Addr) {
        self.inner.routes.write().remove(&(from, to));
    }

    /// Set the latency model (applies to connections opened afterwards).
    pub fn set_latency(&self, latency: Latency) {
        *self.inner.latency.write() = latency;
    }

    /// Snapshot of the connection counters.
    pub fn stats(&self) -> NetStats {
        *self.inner.stats.read()
    }

    /// Bind a listener on `(host, port)`. Port 0 picks an ephemeral port.
    pub fn listen(&self, host: HostId, port: u16) -> TdpResult<Listener> {
        let mut hosts = self.inner.hosts.write();
        let entry = hosts.get_mut(&host).ok_or(TdpError::NoSuchHost(host))?;
        if !entry.alive {
            return Err(TdpError::NoSuchHost(host));
        }
        let port = if port == 0 {
            let p = entry.next_ephemeral;
            entry.next_ephemeral = entry.next_ephemeral.wrapping_add(1).max(49152);
            Port(p)
        } else {
            Port(port)
        };
        if entry.listeners.contains_key(&port) {
            return Err(TdpError::Substrate(format!(
                "port {port} already bound on {host}"
            )));
        }
        // Accept backlog is bounded like a real kernel's (SOMAXCONN):
        // `connect` refuses once it fills rather than queueing
        // connections an unresponsive accept loop will never take.
        let (tx, rx) = crossbeam::channel::bounded(BACKLOG);
        entry.listeners.insert(port, tx);
        Ok(Listener {
            addr: Addr { host, port },
            incoming: rx,
        })
    }

    /// Release a listener's port (listeners dropped without unbind keep
    /// the port reserved, like a leaked fd).
    pub fn unbind(&self, addr: Addr) {
        if let Some(h) = self.inner.hosts.write().get_mut(&addr.host) {
            h.listeners.remove(&addr.port);
        }
    }

    /// Would a connection from `from` to `to` be permitted right now?
    /// Checks existence, liveness, partitions and firewall policy —
    /// everything except whether something is actually listening.
    pub fn route_permitted(&self, from: HostId, to: Addr) -> TdpResult<()> {
        let hosts = self.inner.hosts.read();
        let src = hosts.get(&from).ok_or(TdpError::NoSuchHost(from))?;
        let dst = hosts.get(&to.host).ok_or(TdpError::NoSuchHost(to.host))?;
        if !src.alive {
            return Err(TdpError::NoSuchHost(from));
        }
        if !dst.alive {
            return Err(TdpError::ConnectionRefused(to));
        }
        let (sz, dz) = (src.zone, dst.zone);
        drop(hosts);
        if sz == dz {
            return Ok(());
        }
        let zones = self.inner.zones.read();
        // Partitions block even authorized routes (a cut cable beats a
        // firewall rule).
        let partitioned = zones.get(&sz).is_some_and(|z| z.partitioned.contains(&dz))
            || zones.get(&dz).is_some_and(|z| z.partitioned.contains(&sz));
        if partitioned {
            return Err(TdpError::BlockedByFirewall { from, to });
        }
        if self.inner.routes.read().contains(&(from, to)) {
            return Ok(());
        }
        // Leaving the source zone requires outbound permission (public is
        // OPEN); entering the destination zone requires inbound.
        let out_ok = zones.get(&sz).is_none_or(|z| z.policy.allow_outbound);
        let in_ok = zones.get(&dz).is_none_or(|z| z.policy.allow_inbound);
        if out_ok && in_ok {
            Ok(())
        } else {
            Err(TdpError::BlockedByFirewall { from, to })
        }
    }

    /// Open a connection from `from` to the listener at `to`.
    pub fn connect(&self, from: HostId, to: Addr) -> TdpResult<Conn> {
        if let Err(e) = self.route_permitted(from, to) {
            if matches!(e, TdpError::BlockedByFirewall { .. }) {
                self.inner.stats.write().connections_blocked += 1;
            }
            return Err(e);
        }
        let mut hosts = self.inner.hosts.write();
        // Allocate the client's ephemeral source port.
        let src_port = {
            let src = hosts.get_mut(&from).ok_or(TdpError::NoSuchHost(from))?;
            let p = src.next_ephemeral;
            src.next_ephemeral = src.next_ephemeral.wrapping_add(1).max(49152);
            Port(p)
        };
        let src_zone = hosts[&from].zone;
        let dst = hosts
            .get_mut(&to.host)
            .ok_or(TdpError::NoSuchHost(to.host))?;
        let dst_zone = dst.zone;
        let accept_tx = dst
            .listeners
            .get(&to.port)
            .cloned()
            .ok_or(TdpError::ConnectionRefused(to))?;
        let lat = *self.inner.latency.read();
        let latency = if src_zone == dst_zone {
            lat.local
        } else {
            lat.cross_zone
        };
        let local = Addr {
            host: from,
            port: src_port,
        };
        let (client, server) = Conn::pair_with(local, to, latency);
        // Register the pipes on both hosts for kill_host.
        let (p1, p2) = (Arc::downgrade(&client.tx), Arc::downgrade(&client.rx));
        dst.pipes.push(p1.clone());
        dst.pipes.push(p2.clone());
        if let Some(src) = hosts.get_mut(&from) {
            src.pipes.push(p1);
            src.pipes.push(p2);
        }
        drop(hosts);
        // A full backlog refuses like a closed port — never blocks the
        // dialer on a listener that has stopped accepting.
        accept_tx
            .try_send(server)
            .map_err(|_| TdpError::ConnectionRefused(to))?;
        self.inner.stats.write().connections_opened += 1;
        Ok(client)
    }

    /// Kill a host: every connection touching it is severed (peers see
    /// EOF), its listeners are dropped, and future binds/connects fail.
    pub fn kill_host(&self, host: HostId) {
        let mut hosts = self.inner.hosts.write();
        if let Some(h) = hosts.get_mut(&host) {
            h.alive = false;
            h.listeners.clear();
            for pipe in h.pipes.drain(..) {
                if let Some(p) = pipe.upgrade() {
                    p.close();
                }
            }
        }
    }

    /// Bring a killed host back (listeners and connections stay gone;
    /// the "machine" rebooted).
    pub fn revive_host(&self, host: HostId) {
        if let Some(h) = self.inner.hosts.write().get_mut(&host) {
            h.alive = true;
        }
    }

    /// Is the host currently alive?
    pub fn host_alive(&self, host: HostId) -> bool {
        self.inner.hosts.read().get(&host).is_some_and(|h| h.alive)
    }

    /// All currently-alive hosts, sorted by id (stable output for
    /// inventory endpoints and tests).
    pub fn hosts(&self) -> Vec<HostId> {
        let mut v: Vec<HostId> = self
            .inner
            .hosts
            .read()
            .iter()
            .filter(|(_, h)| h.alive)
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    /// Partition two zones: no traffic between them, not even authorized
    /// routes, until [`Network::heal_partition`]. Existing connections
    /// are left untouched (half-open), as with a real route flap.
    pub fn partition(&self, a: ZoneId, b: ZoneId) {
        let mut zones = self.inner.zones.write();
        if let Some(z) = zones.get_mut(&a) {
            z.partitioned.insert(b);
        }
        if let Some(z) = zones.get_mut(&b) {
            z.partitioned.insert(a);
        }
    }

    /// Remove a partition.
    pub fn heal_partition(&self, a: ZoneId, b: ZoneId) {
        let mut zones = self.inner.zones.write();
        if let Some(z) = zones.get_mut(&a) {
            z.partitioned.remove(&b);
        }
        if let Some(z) = zones.get_mut(&b) {
            z.partitioned.remove(&a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_connect_accept() {
        let net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let lis = net.listen(b, 2090).unwrap();
        let c = net.connect(a, Addr::new(b, 2090)).unwrap();
        let mut s = lis.accept().unwrap();
        c.send(b"ping").unwrap();
        assert_eq!(&s.recv().unwrap()[..], b"ping");
        assert_eq!(s.peer_addr().host, a);
    }

    #[test]
    fn ephemeral_port_allocation() {
        let net = Network::new();
        let a = net.add_host();
        let l1 = net.listen(a, 0).unwrap();
        let l2 = net.listen(a, 0).unwrap();
        assert_ne!(l1.local_addr().port, l2.local_addr().port);
        assert!(l1.local_addr().port.0 >= 49152);
    }

    #[test]
    fn connection_refused_when_nothing_listens() {
        let net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let err = net.connect(a, Addr::new(b, 1)).unwrap_err();
        assert_eq!(err, TdpError::ConnectionRefused(Addr::new(b, 1)));
    }

    #[test]
    fn double_bind_fails() {
        let net = Network::new();
        let a = net.add_host();
        let _l = net.listen(a, 7).unwrap();
        assert!(net.listen(a, 7).is_err());
    }

    #[test]
    fn unbind_releases_port() {
        let net = Network::new();
        let a = net.add_host();
        let l = net.listen(a, 7).unwrap();
        net.unbind(l.local_addr());
        assert!(net.listen(a, 7).is_ok());
    }

    #[test]
    fn nat_blocks_inbound_allows_outbound() {
        let net = Network::new();
        let pub_host = net.add_host();
        let zone = net.add_private_zone(FirewallPolicy::NAT);
        let priv_host = net.add_host_in(zone);
        // Inbound (public -> private) blocked.
        let _l = net.listen(priv_host, 80).unwrap();
        let err = net.connect(pub_host, Addr::new(priv_host, 80)).unwrap_err();
        assert!(matches!(err, TdpError::BlockedByFirewall { .. }));
        // Outbound (private -> public) allowed.
        let _l2 = net.listen(pub_host, 80).unwrap();
        assert!(net.connect(priv_host, Addr::new(pub_host, 80)).is_ok());
        assert_eq!(net.stats().connections_blocked, 1);
        assert_eq!(net.stats().connections_opened, 1);
    }

    #[test]
    fn strict_blocks_both_directions() {
        let net = Network::new();
        let pub_host = net.add_host();
        let zone = net.add_private_zone(FirewallPolicy::STRICT);
        let priv_host = net.add_host_in(zone);
        let _lp = net.listen(pub_host, 80).unwrap();
        let _lq = net.listen(priv_host, 80).unwrap();
        assert!(net.connect(priv_host, Addr::new(pub_host, 80)).is_err());
        assert!(net.connect(pub_host, Addr::new(priv_host, 80)).is_err());
    }

    #[test]
    fn authorized_route_crosses_strict_firewall() {
        let net = Network::new();
        let pub_host = net.add_host();
        let zone = net.add_private_zone(FirewallPolicy::STRICT);
        let priv_host = net.add_host_in(zone);
        let _l = net.listen(pub_host, 9618).unwrap();
        let to = Addr::new(pub_host, 9618);
        assert!(net.connect(priv_host, to).is_err());
        net.authorize_route(priv_host, to);
        assert!(net.connect(priv_host, to).is_ok());
        net.revoke_route(priv_host, to);
        assert!(net.connect(priv_host, to).is_err());
    }

    #[test]
    fn intra_private_zone_traffic_is_free() {
        let net = Network::new();
        let zone = net.add_private_zone(FirewallPolicy::STRICT);
        let a = net.add_host_in(zone);
        let b = net.add_host_in(zone);
        let _l = net.listen(b, 1).unwrap();
        assert!(net.connect(a, Addr::new(b, 1)).is_ok());
    }

    #[test]
    fn kill_host_severs_connections() {
        let net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let lis = net.listen(b, 5).unwrap();
        let mut c = net.connect(a, Addr::new(b, 5)).unwrap();
        let _s = lis.accept().unwrap();
        net.kill_host(b);
        assert_eq!(c.recv(), Err(TdpError::Disconnected));
        assert!(net.connect(a, Addr::new(b, 5)).is_err());
        assert!(!net.host_alive(b));
    }

    #[test]
    fn revive_host_allows_new_listeners() {
        let net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        net.kill_host(b);
        assert!(net.listen(b, 5).is_err());
        net.revive_host(b);
        let _l = net.listen(b, 5).unwrap();
        assert!(net.connect(a, Addr::new(b, 5)).is_ok());
    }

    #[test]
    fn partition_blocks_even_authorized_routes() {
        let net = Network::new();
        let pub_host = net.add_host();
        let zone = net.add_private_zone(FirewallPolicy::NAT);
        let priv_host = net.add_host_in(zone);
        let _l = net.listen(pub_host, 1).unwrap();
        let to = Addr::new(pub_host, 1);
        net.authorize_route(priv_host, to);
        net.partition(ZoneId::PUBLIC, zone);
        assert!(net.connect(priv_host, to).is_err());
        net.heal_partition(ZoneId::PUBLIC, zone);
        assert!(net.connect(priv_host, to).is_ok());
    }

    #[test]
    fn cross_zone_latency_applies() {
        let net = Network::new();
        net.set_latency(Latency {
            local: Duration::ZERO,
            cross_zone: Duration::from_millis(30),
        });
        let pub_host = net.add_host();
        let zone = net.add_private_zone(FirewallPolicy::NAT);
        let priv_host = net.add_host_in(zone);
        let lis = net.listen(pub_host, 1).unwrap();
        let c = net.connect(priv_host, Addr::new(pub_host, 1)).unwrap();
        let mut s = lis.accept().unwrap();
        let t0 = std::time::Instant::now();
        c.send(b"x").unwrap();
        s.recv().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn zone_of_unknown_host_errors() {
        let net = Network::new();
        assert!(net.zone_of(HostId(99)).is_err());
    }
}
