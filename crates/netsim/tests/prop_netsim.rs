//! Property tests on the simulated network: ordering, conservation and
//! firewall invariants under random traffic.

use proptest::prelude::*;
use tdp_netsim::{FirewallPolicy, Network};
use tdp_proto::Addr;

proptest! {
    /// Bytes arrive in order and nothing is lost or duplicated,
    /// regardless of how sends are sliced into chunks.
    #[test]
    fn stream_order_and_conservation(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 1..40)
    ) {
        let net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let lis = net.listen(b, 1).unwrap();
        let tx = net.connect(a, Addr::new(b, 1)).unwrap();
        let mut rx = lis.accept().unwrap();
        let mut expected = Vec::new();
        for c in &chunks {
            tx.send(c).unwrap();
            expected.extend_from_slice(c);
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(chunk) = rx.recv() {
            got.extend_from_slice(&chunk);
        }
        prop_assert_eq!(got, expected);
    }

    /// Framed messages survive arbitrary chunk re-slicing: send a frame
    /// stream cut at random boundaries, decode the same messages.
    #[test]
    fn frames_survive_reslicing(
        keys in proptest::collection::vec("[a-z]{1,8}", 1..12),
        cuts in proptest::collection::vec(1usize..16, 1..8),
    ) {
        use tdp_proto::{encode_frame, ContextId, Message};
        let msgs: Vec<Message> = keys
            .iter()
            .map(|k| Message::Put { ctx: ContextId(1), key: k.clone(), value: "v".into() })
            .collect();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_frame(m));
        }
        let net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let lis = net.listen(b, 1).unwrap();
        let tx = net.connect(a, Addr::new(b, 1)).unwrap();
        let mut rx = lis.accept().unwrap();
        // Slice the wire bytes by the random cut sizes, round robin.
        let mut pos = 0;
        let mut ci = 0;
        while pos < wire.len() {
            let n = cuts[ci % cuts.len()].min(wire.len() - pos);
            tx.send(&wire[pos..pos + n]).unwrap();
            pos += n;
            ci += 1;
        }
        for m in &msgs {
            let got = rx.recv_msg().unwrap();
            prop_assert_eq!(&got, m);
        }
    }

    /// Firewall invariant: whatever mix of zones and policies, a
    /// connection succeeds iff `route_permitted` says so — connect never
    /// leaks through a boundary route_permitted rejects.
    #[test]
    fn connect_agrees_with_route_permitted(
        outbound in any::<bool>(),
        inbound in any::<bool>(),
        from_private in any::<bool>(),
        to_private in any::<bool>(),
        authorized in any::<bool>(),
    ) {
        let net = Network::new();
        let policy = FirewallPolicy { allow_outbound: outbound, allow_inbound: inbound };
        let zone = net.add_private_zone(policy);
        let from = if from_private { net.add_host_in(zone) } else { net.add_host() };
        let to = if to_private { net.add_host_in(zone) } else { net.add_host() };
        let lis = net.listen(to, 9).unwrap();
        let addr = lis.local_addr();
        if authorized {
            net.authorize_route(from, addr);
        }
        let permitted = net.route_permitted(from, addr).is_ok();
        let connected = net.connect(from, addr).is_ok();
        prop_assert_eq!(permitted, connected);
        // Same-zone traffic must always be permitted.
        if from_private == to_private {
            prop_assert!(permitted);
        }
    }
}
