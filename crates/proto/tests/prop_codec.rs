//! Property tests for the wire codec and attribute parsing.

use bytes::BytesMut;
use proptest::prelude::*;
use tdp_proto::ids::{ContextId, HostId};
use tdp_proto::message::{Message, Reply};
use tdp_proto::{attr, decode_frame, encode_frame, FrameDecoder, FrameError};

fn arb_string() -> impl Strategy<Value = String> {
    // Any unicode, bounded length; includes empty.
    proptest::string::string_regex(".{0,64}").unwrap()
}

fn arb_message() -> impl Strategy<Value = Message> {
    let ctx = any::<u64>().prop_map(ContextId);
    prop_oneof![
        (ctx.clone(), arb_string(), arb_string()).prop_map(|(ctx, key, value)| Message::Put {
            ctx,
            key,
            value
        }),
        (ctx.clone(), arb_string(), any::<bool>()).prop_map(|(ctx, key, blocking)| Message::Get {
            ctx,
            key,
            blocking
        }),
        (ctx.clone(), arb_string()).prop_map(|(ctx, key)| Message::Remove { ctx, key }),
        (ctx.clone(), arb_string(), any::<u64>(), any::<bool>()).prop_map(
            |(ctx, key, token, only_future)| Message::Subscribe {
                ctx,
                key,
                token,
                only_future
            }
        ),
        (ctx.clone(), any::<u64>()).prop_map(|(ctx, token)| Message::Unsubscribe { ctx, token }),
        (ctx.clone(), arb_string()).prop_map(|(ctx, prefix)| Message::ListKeys { ctx, prefix }),
        ctx.clone().prop_map(|ctx| Message::Join { ctx }),
        ctx.prop_map(|ctx| Message::Leave { ctx }),
        Just(Message::Reply(Reply::Ok)),
        (arb_string(), arb_string())
            .prop_map(|(key, value)| Message::Reply(Reply::Value { key, value })),
        proptest::collection::vec(arb_string(), 0..8)
            .prop_map(|keys| Message::Reply(Reply::Keys(keys))),
        (any::<u64>(), arb_string(), arb_string())
            .prop_map(|(token, key, value)| Message::Reply(Reply::Notify { token, key, value })),
        any::<u32>().prop_map(|h| Message::Hello { host: HostId(h) }),
    ]
}

proptest! {
    // Miri runs these same properties (the codec is pure, no FFI), but
    // interprets ~100x slower than native; fewer cases keeps the
    // sanitizer CI job inside its budget while still exercising the
    // torn-read decoder paths byte-by-byte under the aliasing model.
    #![proptest_config(ProptestConfig {
        cases: if cfg!(miri) { 8 } else { 64 },
        ..ProptestConfig::default()
    })]

    #[test]
    fn encode_decode_roundtrip(msg in arb_message()) {
        let frame = encode_frame(&msg);
        let mut buf = BytesMut::from(&frame[..]);
        let back = decode_frame(&mut buf).expect("decode");
        prop_assert_eq!(back, msg);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn truncation_never_panics_and_never_decodes(msg in arb_message(), cut in 0usize..64) {
        let frame = encode_frame(&msg);
        if cut < frame.len() {
            let mut buf = BytesMut::from(&frame[..cut]);
            prop_assert_eq!(decode_frame(&mut buf), Err(FrameError::Incomplete));
        }
    }

    #[test]
    fn pipelined_frames_decode_in_order(msgs in proptest::collection::vec(arb_message(), 1..10)) {
        let mut buf = BytesMut::new();
        for m in &msgs {
            buf.extend_from_slice(&encode_frame(m));
        }
        for m in &msgs {
            let got = decode_frame(&mut buf).expect("decode");
            prop_assert_eq!(&got, m);
        }
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = BytesMut::from(&data[..]);
        let _ = decode_frame(&mut buf); // any result is fine; must not panic
    }

    #[test]
    fn decoder_byte_at_a_time(msgs in proptest::collection::vec(arb_message(), 1..8)) {
        // The worst torn-read case: every TCP segment is one byte.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for m in &msgs {
            for b in encode_frame(m).iter() {
                dec.feed(&[*b]);
                while let Some(msg) = dec.next().expect("stream is well-formed") {
                    got.push(msg);
                }
            }
        }
        prop_assert_eq!(&got, &msgs);
        prop_assert!(dec.is_empty());
    }

    #[test]
    fn decoder_random_chunks(
        msgs in proptest::collection::vec(arb_message(), 1..8),
        cuts in proptest::collection::vec(1usize..17, 0..64),
    ) {
        // Split the concatenated stream at arbitrary points: chunk
        // boundaries never align with frame boundaries except by luck.
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(m));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut off = 0;
        let mut cuts = cuts.into_iter();
        while off < stream.len() {
            let n = cuts.next().unwrap_or(stream.len()).min(stream.len() - off);
            dec.feed(&stream[off..off + n]);
            off += n;
            while let Some(msg) = dec.next().expect("stream is well-formed") {
                got.push(msg);
            }
        }
        prop_assert_eq!(&got, &msgs);
        prop_assert!(dec.is_empty());
    }

    #[test]
    fn decoder_survives_random_bytes(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Arbitrary garbage must never panic, and after an error the
        // decoder keeps returning without looping forever.
        let mut dec = FrameDecoder::new();
        dec.feed(&data);
        for _ in 0..(data.len() + 1) {
            match dec.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    #[test]
    fn multi_value_join_split_roundtrip(
        parts in proptest::collection::vec("[a-zA-Z0-9 _./-]{0,16}", 0..8)
    ) {
        let joined = attr::join_multi_value(&parts);
        prop_assert_eq!(attr::split_multi_value(&joined), parts);
    }
}
