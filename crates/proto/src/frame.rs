//! Binary framing of [`Message`]s.
//!
//! The simulated network transports byte buffers, so attribute-space
//! traffic is framed exactly as it would be on a real TCP socket: a
//! 4-byte big-endian length prefix followed by a hand-rolled tag-based
//! binary encoding. The codec is deliberately simple (one tag byte per
//! variant, `u32`-length-prefixed UTF-8 strings, fixed-width integers)
//! so the encoded form is stable and property-testable.

use crate::error::TdpError;
use crate::ids::ContextId;
use crate::message::{Message, Reply};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors from the frame codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the header or declared payload length.
    Incomplete,
    /// Unknown message/reply tag byte.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Declared length exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// Trailing bytes after a well-formed message.
    TrailingBytes(usize),
    /// A complete frame (per its length prefix) whose body ends
    /// mid-field. Distinct from [`FrameError::Incomplete`]: more bytes
    /// from the wire cannot repair it, the stream is corrupt.
    Malformed,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Incomplete => write!(f, "incomplete frame"),
            FrameError::BadTag(t) => write!(f, "unknown tag byte 0x{t:02x}"),
            FrameError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            FrameError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            FrameError::Malformed => write!(f, "malformed frame body"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Upper bound on a single frame; a put of a pathological value cannot
/// wedge a server with an unbounded allocation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

// Message tags.
const T_PUT: u8 = 1;
const T_GET: u8 = 2;
const T_REMOVE: u8 = 3;
const T_SUBSCRIBE: u8 = 4;
const T_UNSUBSCRIBE: u8 = 5;
const T_LISTKEYS: u8 = 6;
const T_JOIN: u8 = 7;
const T_LEAVE: u8 = 8;
const T_REPLY: u8 = 9;
const T_HELLO: u8 = 10;

// Reply tags.
const R_OK: u8 = 1;
const R_VALUE: u8 = 2;
const R_KEYS: u8 = 3;
const R_NOTIFY: u8 = 4;
const R_ERR: u8 = 5;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

// ------------------------------------------------------- decode scratch

/// Bound on how many recycled strings a [`DecodeScratch`] retains, and
/// on the capacity of any single retained string. Oversized or surplus
/// strings just drop — the scratch is an allocation amortizer, not a
/// cache.
const SCRATCH_STRINGS: usize = 32;
const SCRATCH_STRING_CAP: usize = 64 * 1024;

/// Recycled string storage for the decode path.
///
/// Every string field of a decoded [`Message`] needs an owned `String`.
/// A steady-state transport loop would pay one heap allocation per
/// field per message; instead, callers hand finished messages back via
/// [`DecodeScratch::recycle_message`] and the next decode reuses their
/// capacity. A fresh (or empty) scratch behaves exactly like plain
/// allocation, so the scratch is purely an optimization — never a
/// correctness dependency.
#[derive(Default)]
pub struct DecodeScratch {
    strings: Vec<String>,
}

impl DecodeScratch {
    pub fn new() -> DecodeScratch {
        DecodeScratch::default()
    }

    /// Copy `bytes` into a (recycled, if available) `String`.
    fn string_from(&mut self, bytes: &[u8]) -> Result<String, FrameError> {
        let text = std::str::from_utf8(bytes).map_err(|_| FrameError::BadUtf8)?;
        let mut s = self.strings.pop().unwrap_or_default();
        s.clear();
        s.push_str(text);
        Ok(s)
    }

    /// Return one string's capacity to the pool.
    pub fn recycle_string(&mut self, s: String) {
        if self.strings.len() < SCRATCH_STRINGS && s.capacity() <= SCRATCH_STRING_CAP {
            self.strings.push(s);
        }
    }

    /// Tear a finished message apart and keep its strings' capacity for
    /// future decodes.
    pub fn recycle_message(&mut self, msg: Message) {
        match msg {
            Message::Put { key, value, .. } => {
                self.recycle_string(key);
                self.recycle_string(value);
            }
            Message::Get { key, .. } | Message::Remove { key, .. } => self.recycle_string(key),
            Message::Subscribe { key, .. } => self.recycle_string(key),
            Message::ListKeys { prefix, .. } => self.recycle_string(prefix),
            Message::Reply(r) => self.recycle_reply(r),
            Message::Unsubscribe { .. }
            | Message::Join { .. }
            | Message::Leave { .. }
            | Message::Hello { .. } => {}
        }
    }

    /// Reply half of [`DecodeScratch::recycle_message`].
    pub fn recycle_reply(&mut self, r: Reply) {
        match r {
            Reply::Value { key, value } | Reply::Notify { key, value, .. } => {
                self.recycle_string(key);
                self.recycle_string(value);
            }
            Reply::Keys(keys) => {
                for k in keys {
                    self.recycle_string(k);
                }
            }
            Reply::Ok | Reply::Err(_) => {}
        }
    }

    /// Strings currently pooled (test visibility).
    pub fn pooled(&self) -> usize {
        self.strings.len()
    }
}

// --------------------------------------------------------------- cursor

/// A non-consuming read cursor over a complete frame body. Decoding
/// borrows the receive buffer in place — no `split_to` copies, no
/// `freeze` refcounts — and the buffer is advanced once, after the
/// whole body parses.
struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Incomplete);
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn get_u32(&mut self) -> Result<u32, FrameError> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn get_u64(&mut self) -> Result<u64, FrameError> {
        let s = self.take(8)?;
        Ok(u64::from_be_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    fn get_str(&mut self, scratch: &mut DecodeScratch) -> Result<String, FrameError> {
        let len = self.get_u32()? as usize;
        if len > MAX_FRAME {
            return Err(FrameError::TooLarge(len));
        }
        scratch.string_from(self.take(len)?)
    }

    fn get_ctx(&mut self) -> Result<ContextId, FrameError> {
        Ok(ContextId(self.get_u64()?))
    }
}

/// Encode a message as a length-prefixed frame.
pub fn encode_frame(msg: &Message) -> Bytes {
    let mut framed = BytesMut::with_capacity(64);
    encode_frame_into(msg, &mut framed);
    framed.freeze()
}

/// Encode a message as a length-prefixed frame into `out`, replacing
/// its contents. The buffer's capacity is reused — a steady-state
/// sender recycling one buffer allocates nothing here.
pub fn encode_frame_into(msg: &Message, out: &mut BytesMut) {
    out.clear();
    out.put_u32(0); // length, patched below
    encode_body(msg, out);
    let body_len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&body_len.to_be_bytes());
}

fn encode_body(msg: &Message, buf: &mut BytesMut) {
    match msg {
        Message::Put { ctx, key, value } => {
            buf.put_u8(T_PUT);
            buf.put_u64(ctx.0);
            put_str(buf, key);
            put_str(buf, value);
        }
        Message::Get { ctx, key, blocking } => {
            buf.put_u8(T_GET);
            buf.put_u64(ctx.0);
            put_str(buf, key);
            buf.put_u8(u8::from(*blocking));
        }
        Message::Remove { ctx, key } => {
            buf.put_u8(T_REMOVE);
            buf.put_u64(ctx.0);
            put_str(buf, key);
        }
        Message::Subscribe {
            ctx,
            key,
            token,
            only_future,
        } => {
            buf.put_u8(T_SUBSCRIBE);
            buf.put_u64(ctx.0);
            put_str(buf, key);
            buf.put_u64(*token);
            buf.put_u8(u8::from(*only_future));
        }
        Message::Unsubscribe { ctx, token } => {
            buf.put_u8(T_UNSUBSCRIBE);
            buf.put_u64(ctx.0);
            buf.put_u64(*token);
        }
        Message::ListKeys { ctx, prefix } => {
            buf.put_u8(T_LISTKEYS);
            buf.put_u64(ctx.0);
            put_str(buf, prefix);
        }
        Message::Join { ctx } => {
            buf.put_u8(T_JOIN);
            buf.put_u64(ctx.0);
        }
        Message::Leave { ctx } => {
            buf.put_u8(T_LEAVE);
            buf.put_u64(ctx.0);
        }
        Message::Reply(r) => {
            buf.put_u8(T_REPLY);
            encode_reply(r, buf);
        }
        Message::Hello { host } => {
            buf.put_u8(T_HELLO);
            buf.put_u32(host.0);
        }
    }
}

fn encode_reply(r: &Reply, buf: &mut BytesMut) {
    match r {
        Reply::Ok => buf.put_u8(R_OK),
        Reply::Value { key, value } => {
            buf.put_u8(R_VALUE);
            put_str(buf, key);
            put_str(buf, value);
        }
        Reply::Keys(keys) => {
            buf.put_u8(R_KEYS);
            buf.put_u32(keys.len() as u32);
            for k in keys {
                put_str(buf, k);
            }
        }
        Reply::Notify { token, key, value } => {
            buf.put_u8(R_NOTIFY);
            buf.put_u64(*token);
            put_str(buf, key);
            put_str(buf, value);
        }
        Reply::Err(e) => {
            buf.put_u8(R_ERR);
            // Errors cross the wire in display form; clients that need to
            // match re-parse the canonical variants below.
            put_str(buf, &error_code(e));
            put_str(buf, &e.to_string());
        }
    }
}

/// Stable short code for each error variant, so the wire form survives
/// message-text edits.
fn error_code(e: &TdpError) -> String {
    match e {
        TdpError::AttributeNotFound(a) => format!("ENOATTR:{a}"),
        TdpError::NoSuchContext(c) => format!("ENOCTX:{}", c.0),
        TdpError::HandleClosed => "ECLOSED".to_string(),
        TdpError::Timeout => "ETIMEOUT".to_string(),
        other => format!("EOTHER:{other}"),
    }
}

fn parse_error_code(code: &str, text: &str) -> TdpError {
    if let Some(a) = code.strip_prefix("ENOATTR:") {
        TdpError::AttributeNotFound(a.to_string())
    } else if let Some(c) = code.strip_prefix("ENOCTX:") {
        c.parse()
            .map(|n| TdpError::NoSuchContext(ContextId(n)))
            .unwrap_or_else(|_| TdpError::Protocol(text.to_string()))
    } else if code == "ECLOSED" {
        TdpError::HandleClosed
    } else if code == "ETIMEOUT" {
        TdpError::Timeout
    } else {
        TdpError::Protocol(text.to_string())
    }
}

/// Decode one frame from the front of `buf`. On success the frame's bytes
/// are consumed from `buf`. Returns `Err(FrameError::Incomplete)` without
/// consuming anything when a full frame has not yet arrived.
pub fn decode_frame(buf: &mut BytesMut) -> Result<Message, FrameError> {
    decode_frame_with(buf, &mut DecodeScratch::new())
}

/// [`decode_frame`] with recycled-string storage: string fields of the
/// decoded message reuse capacity previously returned through
/// [`DecodeScratch::recycle_message`], so a steady-state receive loop
/// performs no heap allocation here.
pub fn decode_frame_with(
    buf: &mut BytesMut,
    scratch: &mut DecodeScratch,
) -> Result<Message, FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Incomplete);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    if buf.len() < 4 + len {
        return Err(FrameError::Incomplete);
    }
    let res = {
        let mut cur = Cursor {
            b: &buf[4..4 + len],
            pos: 0,
        };
        // The whole declared body is in hand: a field that still runs
        // out of bytes is corruption, not a torn read. Reporting it as
        // `Incomplete` would make a streaming caller wait for bytes
        // that can never help (the frame is consumed below either way)
        // — a silent desync.
        let res = decode_body(&mut cur, scratch).map_err(|e| match e {
            FrameError::Incomplete => FrameError::Malformed,
            other => other,
        });
        match res {
            Ok(msg) if cur.remaining() > 0 => {
                let trailing = cur.remaining();
                scratch.recycle_message(msg);
                Err(FrameError::TrailingBytes(trailing))
            }
            other => other,
        }
    };
    // Consumed on success *and* on body corruption — the length prefix
    // was honest, so the stream position stays framed either way.
    buf.advance(4 + len);
    res
}

/// Incremental streaming decoder: feed byte chunks as they arrive off a
/// socket (in any fragmentation), poll complete messages out.
///
/// Unlike calling [`decode_frame`] directly, the decoder separates "need
/// more bytes" (`Ok(None)`) from wire corruption (`Err`), so transport
/// loops never spin on an unrecoverable stream.
#[derive(Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder {
            buf: BytesMut::new(),
        }
    }

    /// Append raw bytes read from the transport.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Try to decode the next complete message. `Ok(None)` means more
    /// bytes are needed; any `Err` means the stream is unrecoverable
    /// (framing lost).
    #[allow(clippy::should_implement_trait)] // fallible, not an Iterator
    pub fn next(&mut self) -> Result<Option<Message>, FrameError> {
        self.next_with(&mut DecodeScratch::new())
    }

    /// [`FrameDecoder::next`] decoding through a [`DecodeScratch`], so
    /// string fields reuse recycled capacity.
    pub fn next_with(
        &mut self,
        scratch: &mut DecodeScratch,
    ) -> Result<Option<Message>, FrameError> {
        match decode_frame_with(&mut self.buf, scratch) {
            Ok(msg) => Ok(Some(msg)),
            Err(FrameError::Incomplete) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// No partial frame is pending.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

fn decode_body(cur: &mut Cursor<'_>, scratch: &mut DecodeScratch) -> Result<Message, FrameError> {
    let tag = cur.get_u8()?;
    match tag {
        T_PUT => {
            let ctx = cur.get_ctx()?;
            let key = cur.get_str(scratch)?;
            let value = cur.get_str(scratch)?;
            Ok(Message::Put { ctx, key, value })
        }
        T_GET => {
            let ctx = cur.get_ctx()?;
            let key = cur.get_str(scratch)?;
            let blocking = cur.get_u8()? != 0;
            Ok(Message::Get { ctx, key, blocking })
        }
        T_REMOVE => {
            let ctx = cur.get_ctx()?;
            let key = cur.get_str(scratch)?;
            Ok(Message::Remove { ctx, key })
        }
        T_SUBSCRIBE => {
            let ctx = cur.get_ctx()?;
            let key = cur.get_str(scratch)?;
            let token = cur.get_u64()?;
            let only_future = cur.get_u8()? != 0;
            Ok(Message::Subscribe {
                ctx,
                key,
                token,
                only_future,
            })
        }
        T_UNSUBSCRIBE => {
            let ctx = cur.get_ctx()?;
            let token = cur.get_u64()?;
            Ok(Message::Unsubscribe { ctx, token })
        }
        T_LISTKEYS => {
            let ctx = cur.get_ctx()?;
            let prefix = cur.get_str(scratch)?;
            Ok(Message::ListKeys { ctx, prefix })
        }
        T_JOIN => Ok(Message::Join {
            ctx: cur.get_ctx()?,
        }),
        T_LEAVE => Ok(Message::Leave {
            ctx: cur.get_ctx()?,
        }),
        T_REPLY => Ok(Message::Reply(decode_reply(cur, scratch)?)),
        T_HELLO => Ok(Message::Hello {
            host: crate::ids::HostId(cur.get_u32()?),
        }),
        t => Err(FrameError::BadTag(t)),
    }
}

fn decode_reply(cur: &mut Cursor<'_>, scratch: &mut DecodeScratch) -> Result<Reply, FrameError> {
    let tag = cur.get_u8()?;
    match tag {
        R_OK => Ok(Reply::Ok),
        R_VALUE => {
            let key = cur.get_str(scratch)?;
            let value = cur.get_str(scratch)?;
            Ok(Reply::Value { key, value })
        }
        R_KEYS => {
            let n = cur.get_u32()? as usize;
            if n > MAX_FRAME / 4 {
                return Err(FrameError::TooLarge(n));
            }
            let mut keys = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                keys.push(cur.get_str(scratch)?);
            }
            Ok(Reply::Keys(keys))
        }
        R_NOTIFY => {
            let token = cur.get_u64()?;
            let key = cur.get_str(scratch)?;
            let value = cur.get_str(scratch)?;
            Ok(Reply::Notify { token, key, value })
        }
        R_ERR => {
            let code = cur.get_str(scratch)?;
            let text = cur.get_str(scratch)?;
            let err = parse_error_code(&code, &text);
            scratch.recycle_string(code);
            scratch.recycle_string(text);
            Ok(Reply::Err(err))
        }
        t => Err(FrameError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = encode_frame(&msg);
        let mut buf = BytesMut::from(&frame[..]);
        let decoded = decode_frame(&mut buf).expect("decode");
        assert_eq!(decoded, msg);
        assert!(buf.is_empty());
    }

    #[test]
    fn roundtrip_all_variants() {
        let ctx = ContextId(7);
        roundtrip(Message::Put {
            ctx,
            key: "pid".into(),
            value: "42".into(),
        });
        roundtrip(Message::Get {
            ctx,
            key: "pid".into(),
            blocking: true,
        });
        roundtrip(Message::Get {
            ctx,
            key: "pid".into(),
            blocking: false,
        });
        roundtrip(Message::Remove {
            ctx,
            key: "pid".into(),
        });
        roundtrip(Message::Subscribe {
            ctx,
            key: "ap_status".into(),
            token: 99,
            only_future: false,
        });
        roundtrip(Message::Subscribe {
            ctx,
            key: "ap_status".into(),
            token: 100,
            only_future: true,
        });
        roundtrip(Message::Unsubscribe { ctx, token: 99 });
        roundtrip(Message::ListKeys {
            ctx,
            prefix: "mpi_".into(),
        });
        roundtrip(Message::Join { ctx });
        roundtrip(Message::Leave { ctx });
        roundtrip(Message::Reply(Reply::Ok));
        roundtrip(Message::Reply(Reply::Value {
            key: "k".into(),
            value: "v".into(),
        }));
        roundtrip(Message::Reply(Reply::Keys(vec!["a".into(), "b".into()])));
        roundtrip(Message::Reply(Reply::Notify {
            token: 3,
            key: "k".into(),
            value: "v".into(),
        }));
        roundtrip(Message::Reply(Reply::Err(TdpError::AttributeNotFound(
            "x".into(),
        ))));
        roundtrip(Message::Reply(Reply::Err(TdpError::Timeout)));
        roundtrip(Message::Reply(Reply::Err(TdpError::HandleClosed)));
        roundtrip(Message::Reply(Reply::Err(TdpError::NoSuchContext(
            ContextId(3),
        ))));
    }

    #[test]
    fn incomplete_frames_do_not_consume() {
        let msg = Message::Put {
            ctx: ContextId(1),
            key: "a".into(),
            value: "b".into(),
        };
        let frame = encode_frame(&msg);
        for cut in 0..frame.len() {
            let mut buf = BytesMut::from(&frame[..cut]);
            let before = buf.len();
            assert_eq!(
                decode_frame(&mut buf),
                Err(FrameError::Incomplete),
                "cut={cut}"
            );
            assert_eq!(buf.len(), before, "cut={cut} consumed bytes on Incomplete");
        }
    }

    #[test]
    fn two_frames_back_to_back() {
        let m1 = Message::Join { ctx: ContextId(1) };
        let m2 = Message::Put {
            ctx: ContextId(1),
            key: "k".into(),
            value: "v".into(),
        };
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&encode_frame(&m1));
        buf.extend_from_slice(&encode_frame(&m2));
        assert_eq!(decode_frame(&mut buf).unwrap(), m1);
        assert_eq!(decode_frame(&mut buf).unwrap(), m2);
        assert!(buf.is_empty());
    }

    #[test]
    fn rejects_bad_tag() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u8(0xEE);
        assert_eq!(decode_frame(&mut buf), Err(FrameError::BadTag(0xEE)));
    }

    #[test]
    fn rejects_oversized_declared_length() {
        let mut buf = BytesMut::new();
        buf.put_u32((MAX_FRAME + 1) as u32);
        assert!(matches!(
            decode_frame(&mut buf),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let msg = Message::Join { ctx: ContextId(1) };
        let inner = encode_frame(&msg);
        // Re-frame with one junk byte appended inside the declared body.
        let mut buf = BytesMut::new();
        let body_len = inner.len() - 4;
        buf.put_u32((body_len + 1) as u32);
        buf.extend_from_slice(&inner[4..]);
        buf.put_u8(0);
        assert_eq!(decode_frame(&mut buf), Err(FrameError::TrailingBytes(1)));
    }

    #[test]
    fn rejects_invalid_utf8() {
        // Hand-build a Put whose key bytes are invalid UTF-8.
        let mut body = BytesMut::new();
        body.put_u8(1); // T_PUT
        body.put_u64(0);
        body.put_u32(2);
        body.put_slice(&[0xFF, 0xFE]);
        body.put_u32(0);
        let mut buf = BytesMut::new();
        buf.put_u32(body.len() as u32);
        buf.extend_from_slice(&body);
        assert_eq!(decode_frame(&mut buf), Err(FrameError::BadUtf8));
    }

    #[test]
    fn hello_roundtrips() {
        roundtrip(Message::Hello {
            host: crate::ids::HostId(42),
        });
    }

    #[test]
    fn truncated_body_in_complete_frame_is_malformed() {
        // A frame whose length prefix is honest but whose body stops
        // mid-field: T_PUT with only the ctx, no key/value.
        let mut body = BytesMut::new();
        body.put_u8(1); // T_PUT
        body.put_u64(7); // ctx, then nothing
        let mut buf = BytesMut::new();
        buf.put_u32(body.len() as u32);
        buf.extend_from_slice(&body);
        assert_eq!(decode_frame(&mut buf), Err(FrameError::Malformed));
    }

    #[test]
    fn decoder_handles_byte_at_a_time() {
        let msg = Message::Put {
            ctx: ContextId(3),
            key: "k".into(),
            value: "v".into(),
        };
        let frame = encode_frame(&msg);
        let mut dec = FrameDecoder::new();
        for (i, b) in frame.iter().enumerate() {
            dec.feed(&[*b]);
            let got = dec.next().expect("no error");
            if i + 1 < frame.len() {
                assert!(got.is_none(), "decoded early at byte {i}");
            } else {
                assert_eq!(got, Some(msg.clone()));
            }
        }
        assert!(dec.is_empty());
    }

    #[test]
    fn decoder_drains_multiple_messages_from_one_feed() {
        let m1 = Message::Join { ctx: ContextId(1) };
        let m2 = Message::Leave { ctx: ContextId(1) };
        let mut dec = FrameDecoder::new();
        dec.feed(&encode_frame(&m1));
        dec.feed(&encode_frame(&m2));
        assert_eq!(dec.next().unwrap(), Some(m1));
        assert_eq!(dec.next().unwrap(), Some(m2));
        assert_eq!(dec.next().unwrap(), None);
    }

    #[test]
    fn decoder_surfaces_corruption_once() {
        let mut dec = FrameDecoder::new();
        let mut junk = BytesMut::new();
        junk.put_u32(1);
        junk.put_u8(0xEE);
        dec.feed(&junk);
        assert_eq!(dec.next(), Err(FrameError::BadTag(0xEE)));
    }

    #[test]
    fn encode_frame_into_reuses_buffer_and_matches_encode_frame() {
        let m1 = Message::Put {
            ctx: ContextId(9),
            key: "a-long-key-name".into(),
            value: "v".repeat(300),
        };
        let m2 = Message::Join { ctx: ContextId(2) };
        let mut buf = BytesMut::new();
        encode_frame_into(&m1, &mut buf);
        assert_eq!(&buf[..], &encode_frame(&m1)[..]);
        let cap = buf.capacity();
        // Re-encoding a smaller frame replaces the contents in place.
        encode_frame_into(&m2, &mut buf);
        assert_eq!(&buf[..], &encode_frame(&m2)[..]);
        assert!(buf.capacity() >= cap.min(buf.len()));
    }

    #[test]
    fn scratch_recycles_string_capacity() {
        let msg = Message::Put {
            ctx: ContextId(1),
            key: "some_key".into(),
            value: "some_value".into(),
        };
        let frame = encode_frame(&msg);
        let mut scratch = DecodeScratch::new();
        let mut buf = BytesMut::from(&frame[..]);
        let first = decode_frame_with(&mut buf, &mut scratch).unwrap();
        assert_eq!(first, msg);
        scratch.recycle_message(first);
        assert_eq!(scratch.pooled(), 2);
        // The second decode drains the pool instead of allocating.
        let mut buf = BytesMut::from(&frame[..]);
        let second = decode_frame_with(&mut buf, &mut scratch).unwrap();
        assert_eq!(second, msg);
        assert_eq!(scratch.pooled(), 0);
    }

    #[test]
    fn scratch_decode_matches_plain_decode_for_all_variants() {
        let mut scratch = DecodeScratch::new();
        let msgs = vec![
            Message::Put {
                ctx: ContextId(7),
                key: "k".into(),
                value: "v".into(),
            },
            Message::Reply(Reply::Value {
                key: "k".into(),
                value: "v".into(),
            }),
            Message::Reply(Reply::Notify {
                token: 3,
                key: "k".into(),
                value: "v".into(),
            }),
            Message::Reply(Reply::Err(TdpError::Timeout)),
            Message::Reply(Reply::Keys(vec!["a".into(), "b".into()])),
        ];
        for msg in msgs {
            let frame = encode_frame(&msg);
            let mut buf = BytesMut::from(&frame[..]);
            let got = decode_frame_with(&mut buf, &mut scratch).unwrap();
            assert_eq!(got, msg);
            scratch.recycle_message(got);
        }
    }

    #[test]
    fn unicode_values_roundtrip() {
        roundtrip(Message::Put {
            ctx: ContextId(0),
            key: "dæmon".into(),
            value: "プロセス:\u{1F680}".into(),
        });
    }
}
