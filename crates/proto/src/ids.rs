//! Small copy identifiers shared across the TDP workspace.
//!
//! All identifiers are newtypes over small integers so that they are
//! `Copy`, hash cheaply, and cannot be confused with one another at type
//! level (a `Pid` is not a `Port`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A logical host in the simulated cluster.
///
/// Host 0 is conventionally the *submit* / front-end machine (the user's
/// desktop outside the private network in Figure 1 of the paper); higher
/// ids are execution machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// A process identifier, unique across the whole simulated cluster.
///
/// Real Unix pids are per-host; making them cluster-unique simplifies the
/// attribute space payloads ("PID" attributes) without changing any TDP
/// semantics — the paper's `-a%pid` substitution carries exactly one pid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Pid {
    /// Parse a pid from its attribute-space string form.
    pub fn parse(s: &str) -> Option<Pid> {
        s.trim().parse::<u64>().ok().map(Pid)
    }
}

/// A port number on a simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Port(pub u16);

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A network address: `(host, port)` — what the paper calls the
/// "host/port number pair" disseminated through the attribute space so a
/// tool daemon can contact its front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Addr {
    pub host: HostId,
    pub port: Port,
}

impl Addr {
    pub fn new(host: HostId, port: u16) -> Addr {
        Addr {
            host,
            port: Port(port),
        }
    }

    /// Render in the `host:port` form used as an attribute value.
    pub fn to_attr_value(self) -> String {
        format!("{}:{}", self.host.0, self.port.0)
    }

    /// Parse the `host:port` attribute-value form.
    pub fn parse(s: &str) -> Option<Addr> {
        let (h, p) = s.split_once(':')?;
        Some(Addr {
            host: HostId(h.trim().parse().ok()?),
            port: Port(p.trim().parse().ok()?),
        })
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

/// An attribute-space *context*.
///
/// Section 3.2: "Each RT interacts with the RM through its own local
/// Attribute Space, called a context. A different context parameter is
/// used by the RM in each `tdp_init` call to create a different space."
/// Contexts are reference counted by the server; the space is destroyed
/// when the last member calls `tdp_exit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ContextId(pub u64);

impl ContextId {
    /// The default context used when an RM manages a single RT.
    pub const DEFAULT: ContextId = ContextId(0);
}

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

/// A batch job identifier (Condor "cluster.proc" collapsed to one number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// An MPI rank within a parallel job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Rank(pub u32);

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_roundtrip() {
        let a = Addr::new(HostId(3), 2090);
        assert_eq!(Addr::parse(&a.to_attr_value()), Some(a));
    }

    #[test]
    fn addr_parse_rejects_garbage() {
        assert_eq!(Addr::parse("nonsense"), None);
        assert_eq!(Addr::parse("1:"), None);
        assert_eq!(Addr::parse(":2090"), None);
        assert_eq!(Addr::parse("1:2:3"), None);
        assert_eq!(Addr::parse(""), None);
    }

    #[test]
    fn addr_parse_tolerates_whitespace() {
        assert_eq!(Addr::parse(" 1 : 2090 "), Some(Addr::new(HostId(1), 2090)));
    }

    #[test]
    fn pid_parse() {
        assert_eq!(Pid::parse("42"), Some(Pid(42)));
        assert_eq!(Pid::parse(" 42\n"), Some(Pid(42)));
        assert_eq!(Pid::parse("-1"), None);
        assert_eq!(Pid::parse("pid"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(HostId(7).to_string(), "host7");
        assert_eq!(JobId(1).to_string(), "job1");
        assert_eq!(Rank(3).to_string(), "rank3");
        assert_eq!(ContextId(5).to_string(), "ctx5");
        assert_eq!(Addr::new(HostId(1), 9).to_string(), "host1:9");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(Pid(1) < Pid(2));
        assert!(HostId(0) < HostId(1));
        assert!(JobId(9) < JobId(10));
    }
}
