//! Shared identifiers, wire frames, standard attribute names and error
//! types for the Tool Dæmon Protocol (TDP).
//!
//! This crate is the dependency root of the TDP workspace: every other
//! crate — the simulated network (`tdp-netsim`), the simulated operating
//! system (`tdp-simos`), the attribute-space servers (`tdp-attrspace`),
//! the TDP client library (`tdp-core`) and the two substrate systems
//! (Condor-like resource manager, Paradyn-like run-time tool) — agrees on
//! the vocabulary defined here.
//!
//! The TDP paper (Miller, Cortés, Senar, Livny; SC'03) constrains the
//! attribute space to `(attribute, value)` pairs of NUL-terminated C
//! strings. We keep the same restriction (`String` values, no interior
//! NULs) and layer typed helpers on top in `tdp-core`.

pub mod attr;
pub mod error;
pub mod frame;
pub mod ids;
pub mod message;

pub use attr::{names, AttrKey, AttrValue, OPS_CONTEXT};
pub use error::{TdpError, TdpResult};
pub use frame::{
    decode_frame, decode_frame_with, encode_frame, encode_frame_into, DecodeScratch, FrameDecoder,
    FrameError, MAX_FRAME,
};
pub use ids::{Addr, ContextId, HostId, JobId, Pid, Port, Rank};
pub use message::{AsMessage, Message, ProcRequest, ProcStatus, Reply};
