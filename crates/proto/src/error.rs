//! The error type shared by every layer of the TDP stack.

use crate::ids::{Addr, ContextId, HostId, Pid};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result alias used across the workspace.
pub type TdpResult<T> = Result<T, TdpError>;

/// Errors produced by TDP operations.
///
/// The paper specifies C-style integer returns; we map each failure the
/// prose mentions (e.g. "an error is returned if the attribute is not
/// contained in the shared space" for the non-blocking get) onto a
/// dedicated variant so callers can match on it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TdpError {
    /// Non-blocking get on an attribute absent from the space (§3.2).
    AttributeNotFound(String),
    /// An attribute key failed validation (empty, or contains NUL).
    InvalidAttribute(String),
    /// An attribute value failed validation (contains NUL).
    InvalidValue(String),
    /// The referenced context is unknown or already destroyed.
    NoSuchContext(ContextId),
    /// Operation on a pid the kernel does not know about.
    NoSuchProcess(Pid),
    /// Operation required a process state the target is not in
    /// (e.g. `tdp_continue_process` on an already-running process).
    WrongProcessState {
        pid: Pid,
        state: String,
        wanted: String,
    },
    /// `tdp_attach` when another tracer is already attached.
    AlreadyTraced(Pid),
    /// Detach / control operation by a process that is not the tracer.
    NotTracer(Pid),
    /// The referenced host does not exist in the simulation.
    NoSuchHost(HostId),
    /// Nothing is listening on the destination address.
    ConnectionRefused(Addr),
    /// A firewall / private-network boundary blocked a direct connection;
    /// the caller must use the resource manager's proxy (§2.4).
    BlockedByFirewall { from: HostId, to: Addr },
    /// The peer closed the connection.
    Disconnected,
    /// A blocking call exceeded its deadline.
    Timeout,
    /// Executable not found on the execution host (staging failure).
    NoSuchFile(String),
    /// The handle was already closed by `tdp_exit`.
    HandleClosed,
    /// Malformed wire data.
    Protocol(String),
    /// Failure inside a substrate (scheduler, tool) with a human message.
    Substrate(String),
}

impl fmt::Display for TdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdpError::AttributeNotFound(a) => write!(f, "attribute not found: {a:?}"),
            TdpError::InvalidAttribute(a) => write!(f, "invalid attribute name: {a:?}"),
            TdpError::InvalidValue(v) => write!(f, "invalid attribute value: {v:?}"),
            TdpError::NoSuchContext(c) => write!(f, "no such context: {c}"),
            TdpError::NoSuchProcess(p) => write!(f, "no such process: pid {p}"),
            TdpError::WrongProcessState { pid, state, wanted } => {
                write!(f, "pid {pid} is {state}, operation requires {wanted}")
            }
            TdpError::AlreadyTraced(p) => write!(f, "pid {p} already has a tracer attached"),
            TdpError::NotTracer(p) => write!(f, "caller is not the tracer of pid {p}"),
            TdpError::NoSuchHost(h) => write!(f, "no such host: {h}"),
            TdpError::ConnectionRefused(a) => write!(f, "connection refused: {a}"),
            TdpError::BlockedByFirewall { from, to } => {
                write!(
                    f,
                    "firewall blocked connection {from} -> {to} (use the RM proxy)"
                )
            }
            TdpError::Disconnected => write!(f, "peer disconnected"),
            TdpError::Timeout => write!(f, "operation timed out"),
            TdpError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            TdpError::HandleClosed => write!(f, "TDP handle already closed by tdp_exit"),
            TdpError::Protocol(m) => write!(f, "protocol error: {m}"),
            TdpError::Substrate(m) => write!(f, "substrate error: {m}"),
        }
    }
}

impl std::error::Error for TdpError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;

    #[test]
    fn display_is_informative() {
        let e = TdpError::BlockedByFirewall {
            from: HostId(2),
            to: Addr::new(HostId(0), 2090),
        };
        let s = e.to_string();
        assert!(s.contains("host2"));
        assert!(s.contains("2090"));
        assert!(s.contains("proxy"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TdpError>();
    }

    #[test]
    fn wrong_state_names_both_states() {
        let e = TdpError::WrongProcessState {
            pid: Pid(9),
            state: "Running".into(),
            wanted: "Stopped".into(),
        };
        let s = e.to_string();
        assert!(s.contains("Running") && s.contains("Stopped"));
    }
}
