//! Attribute keys, values and the standard attribute vocabulary.
//!
//! Section 3.2 of the paper: "Information in the shared environment space
//! is kept in the form of (attribute, value) pairs, where both the
//! attribute and value are constrained only to be null-terminated
//! strings. … While there is a standard list of attribute names for the
//! set of data commonly exchanged between the different daemons (every RT
//! and RM must understand this set), different tools and resource
//! managers can extend this set with their own situation specific
//! attributes."
//!
//! This module defines that standard list ([`names`]) plus validation and
//! the client-side multi-value parsing the paper prescribes for values
//! like `"-p1500 -P2000"`.

use crate::error::{TdpError, TdpResult};

/// An attribute name. Must be non-empty and NUL-free (C-string safe).
pub type AttrKey = String;

/// An attribute value. Must be NUL-free (C-string safe); may be empty.
pub type AttrValue = String;

/// The standard attribute vocabulary every TDP-speaking RM and RT must
/// understand. Tools extend the space with their own names freely.
pub mod names {
    /// Pid of the application process, written by the RM after
    /// `tdp_create_process(AP, paused)` — the attribute `paradynd` blocks
    /// on in Figure 6, Step 3.
    pub const PID: &str = "pid";
    /// Path of the application executable on the execution host.
    pub const EXECUTABLE_NAME: &str = "executable_name";
    /// Command-line arguments of the application, space-separated.
    pub const ARGS: &str = "args";
    /// Working directory of the application on the execution host.
    pub const WORKING_DIR: &str = "working_dir";
    /// `host:port` of the run-time tool's front-end (the two Paradyn
    /// listener ports travel as [`TOOL_FRONTEND_ADDR`] and
    /// [`TOOL_FRONTEND_ADDR2`]).
    pub const TOOL_FRONTEND_ADDR: &str = "tool_frontend_addr";
    /// Second front-end listener (Paradyn publishes two: -p and -P).
    pub const TOOL_FRONTEND_ADDR2: &str = "tool_frontend_addr2";
    /// `host:port` the application should connect its standard I/O to.
    pub const STDIO_ADDR: &str = "stdio_addr";
    /// `host:port` of the RM proxy usable to cross the firewall (§2.4).
    pub const PROXY_ADDR: &str = "proxy_addr";
    /// `host:port` of the Central Attribute Space Server, published by
    /// the RM so daemons can reach the global space (§2.1).
    pub const CASS_ADDR: &str = "cass_addr";
    /// Current status of the application process, written by the RM
    /// (§2.3): one of `created`, `running`, `stopped`, `exited:<code>`,
    /// `killed:<sig>`.
    pub const AP_STATUS: &str = "ap_status";
    /// Request attribute an RT writes to ask the RM to perform a process
    /// management operation (§2.3 single-point control): `continue`,
    /// `pause`, `kill`.
    pub const PROC_REQUEST: &str = "proc_request";
    /// Written by the RT when its initialization is complete and the RM
    /// may start the application (create-mode handshake, §2.2 step 5).
    pub const TOOL_READY: &str = "tool_ready";
    /// Heartbeat counter for the fault-detection extension.
    pub const HEARTBEAT: &str = "heartbeat";
    /// Number of ranks in an MPI-universe job.
    pub const MPI_NRANKS: &str = "mpi_nranks";
    /// Pid of MPI rank *i*, as `mpi_rank_pid.<i>`.
    pub const MPI_RANK_PID_PREFIX: &str = "mpi_rank_pid.";

    /// Attribute name carrying the pid of MPI rank `i`.
    pub fn mpi_rank_pid(i: u32) -> String {
        format!("{MPI_RANK_PID_PREFIX}{i}")
    }

    /// Liveness attribute for a supervised component, as
    /// `tdp.ops.live.<component>`. The supervisor daemon writes a
    /// monotonically increasing beat number here on every successful
    /// probe; a stale or missing value means the component is down
    /// (the continuous form of [`HEARTBEAT`]'s one-shot convention).
    pub const OPS_LIVE_PREFIX: &str = "tdp.ops.live.";
    /// Health-state attribute for a supervised component, as
    /// `tdp.ops.health.<component>`: one of `healthy`, `suspect`,
    /// `restarting`, `escalated`.
    pub const OPS_HEALTH_PREFIX: &str = "tdp.ops.health.";
    /// KPI snapshot field, as `tdp.ops.kpi.<field>` — the supervisor
    /// publishes its counters into the space itself so tools can
    /// introspect the system that serves them.
    pub const OPS_KPI_PREFIX: &str = "tdp.ops.kpi.";
    /// Written (value = component name) when the restart-budget circuit
    /// breaker gives up on a component; operators subscribe to this key.
    pub const OPS_ESCALATION: &str = "tdp.ops.escalation";

    /// Liveness attribute name for a supervised component.
    pub fn ops_live(component: &str) -> String {
        format!("{OPS_LIVE_PREFIX}{component}")
    }

    /// Health-state attribute name for a supervised component.
    pub fn ops_health(component: &str) -> String {
        format!("{OPS_HEALTH_PREFIX}{component}")
    }

    /// KPI snapshot attribute name for a counter field.
    pub fn ops_kpi(field: &str) -> String {
        format!("{OPS_KPI_PREFIX}{field}")
    }
}

/// The well-known context the supervisor publishes liveness and KPI
/// attributes into. Ordinary tool sessions use low context ids; the ops
/// plane keeps out of their way at the top of the range.
pub const OPS_CONTEXT: crate::ContextId = crate::ContextId(u64::MAX - 1);

/// Validate an attribute key: non-empty, no NUL bytes.
pub fn validate_key(key: &str) -> TdpResult<()> {
    if key.is_empty() || key.contains('\0') {
        return Err(TdpError::InvalidAttribute(key.to_string()));
    }
    Ok(())
}

/// Validate an attribute value: no NUL bytes (empty is allowed).
pub fn validate_value(value: &str) -> TdpResult<()> {
    if value.contains('\0') {
        return Err(TdpError::InvalidValue(value.to_string()));
    }
    Ok(())
}

/// Client-side parsing of multi-valued attributes.
///
/// §3.2: "If we consider, for example, the arguments passed to an
/// application, we would like to pass information that may be something
/// like `-p1500 -P2000`. This kind of attribute could be stored into the
/// shared environment space using the simple put operation, and let the
/// TDP client handle the parsing."
///
/// Splits on whitespace, honouring single and double quotes so an
/// argument may itself contain spaces (`'a b'` or `"a b"`), and `\`
/// escapes inside double quotes.
///
/// ```
/// use tdp_proto::attr::split_multi_value;
/// assert_eq!(split_multi_value("-p1500 -P2000"), vec!["-p1500", "-P2000"]);
/// assert_eq!(split_multi_value(r#"a "b c""#), vec!["a", "b c"]);
/// ```
pub fn split_multi_value(value: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = value.chars().peekable();
    let mut in_single = false;
    let mut in_double = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        match c {
            '\'' if !in_double => {
                in_single = !in_single;
                any = true;
            }
            '"' if !in_single => {
                in_double = !in_double;
                any = true;
            }
            '\\' if in_double => {
                if let Some(&n) = chars.peek() {
                    cur.push(n);
                    chars.next();
                    any = true;
                }
            }
            c if c.is_whitespace() && !in_single && !in_double => {
                if any || !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                    any = false;
                }
            }
            c => {
                cur.push(c);
                any = true;
            }
        }
    }
    if any || !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Join arguments back into a single attribute value, quoting any
/// argument containing whitespace. `split_multi_value(join_multi_value(v))
/// == v` for NUL-free inputs without embedded quotes.
pub fn join_multi_value<S: AsRef<str>>(parts: &[S]) -> String {
    let mut out = String::new();
    for (i, p) in parts.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let p = p.as_ref();
        if p.is_empty() || p.chars().any(|c| c.is_whitespace()) {
            out.push('"');
            for c in p.chars() {
                if c == '"' || c == '\\' {
                    out.push('\\');
                }
                out.push(c);
            }
            out.push('"');
        } else {
            out.push_str(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_bad_keys() {
        assert!(validate_key("pid").is_ok());
        assert!(validate_key("").is_err());
        assert!(validate_key("a\0b").is_err());
    }

    #[test]
    fn validate_values() {
        assert!(validate_value("").is_ok());
        assert!(validate_value("-p1500 -P2000").is_ok());
        assert!(validate_value("x\0").is_err());
    }

    #[test]
    fn split_paper_example() {
        // The exact example from §3.2 of the paper.
        assert_eq!(split_multi_value("-p1500 -P2000"), vec!["-p1500", "-P2000"]);
    }

    #[test]
    fn split_paradynd_args_from_fig5() {
        // The ToolDaemonArgs line from Figure 5B.
        let v = split_multi_value("-zunix -l3 -mpinguino.cs.wisc.edu -p2090 -P2091 -a%pid");
        assert_eq!(
            v,
            vec![
                "-zunix",
                "-l3",
                "-mpinguino.cs.wisc.edu",
                "-p2090",
                "-P2091",
                "-a%pid"
            ]
        );
    }

    #[test]
    fn split_handles_quotes() {
        assert_eq!(split_multi_value(r#"a "b c" d"#), vec!["a", "b c", "d"]);
        assert_eq!(split_multi_value("a 'b  c'"), vec!["a", "b  c"]);
        assert_eq!(split_multi_value(r#""" x"#), vec!["", "x"]);
        assert_eq!(split_multi_value(r#""a\"b""#), vec![r#"a"b"#]);
    }

    #[test]
    fn split_empty_and_spaces() {
        assert!(split_multi_value("").is_empty());
        assert!(split_multi_value("   ").is_empty());
    }

    #[test]
    fn join_then_split_roundtrip() {
        let args = vec!["simple", "has space", "", "tab\there"];
        let joined = join_multi_value(&args);
        assert_eq!(split_multi_value(&joined), args);
    }

    #[test]
    fn mpi_rank_attr_name() {
        assert_eq!(names::mpi_rank_pid(3), "mpi_rank_pid.3");
        assert!(names::mpi_rank_pid(0).starts_with(names::MPI_RANK_PID_PREFIX));
    }
}
