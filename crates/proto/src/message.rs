//! Wire messages exchanged between TDP clients and the attribute-space
//! servers (LASS / CASS), plus the process-status vocabulary carried in
//! attribute values.

use crate::error::TdpError;
use crate::ids::ContextId;
use serde::{Deserialize, Serialize};

/// A request sent by a TDP client (RM or RT daemon) to an attribute-space
/// server, or the server's reply.
///
/// The put/get pair is the §3.2 interface; `Subscribe` backs
/// `tdp_async_get` (the server pushes a [`Reply::Notify`] when the
/// attribute is stored), `Join`/`Leave` back context reference counting
/// (`tdp_init` / `tdp_exit`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// `tdp_put(handle, attribute, value)`.
    Put {
        ctx: ContextId,
        key: String,
        value: String,
    },
    /// `tdp_get(handle, attribute, &value)`. When `blocking`, the server
    /// parks the request until a matching put arrives; otherwise an
    /// absent attribute yields `AttributeNotFound` (§3.2).
    Get {
        ctx: ContextId,
        key: String,
        blocking: bool,
    },
    /// Remove an attribute ("attributes and values can be inserted and
    /// removed", §2.1). Succeeds even when absent.
    Remove { ctx: ContextId, key: String },
    /// Register interest: the server sends `Reply::Notify` carrying
    /// `token` when `key` is put. With `only_future` false, an already
    /// existing value notifies immediately (the `tdp_async_get` case);
    /// with it true, only a subsequent put fires (persistent watches
    /// re-arming without re-seeing the current value).
    Subscribe {
        ctx: ContextId,
        key: String,
        token: u64,
        only_future: bool,
    },
    /// Cancel a subscription.
    Unsubscribe { ctx: ContextId, token: u64 },
    /// Enumerate keys in the context with the given prefix (diagnostic /
    /// tooling extension).
    ListKeys { ctx: ContextId, prefix: String },
    /// Join a context (refcount +1). Sent by `tdp_init`.
    Join { ctx: ContextId },
    /// Leave a context (refcount −1; space destroyed at zero). Sent by
    /// `tdp_exit`.
    Leave { ctx: ContextId },
    /// A server → client reply or notification.
    Reply(Reply),
    /// Transport-level client introduction: the first frame a client
    /// sends over a real socket, declaring which logical host it runs
    /// on. The simulated network carries host identity in its addresses,
    /// so netsim connections never send this; real TCP connections need
    /// it for the LASS locality rule ("a process … cannot access the
    /// LASS's of other nodes", §2.1).
    Hello { host: crate::ids::HostId },
}

/// Server → client payloads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reply {
    /// Operation completed.
    Ok,
    /// Result of a `Get`.
    Value { key: String, value: String },
    /// Result of `ListKeys`.
    Keys(Vec<String>),
    /// Asynchronous notification for a `Subscribe`.
    Notify {
        token: u64,
        key: String,
        value: String,
    },
    /// Operation failed.
    Err(TdpError),
}

/// Convenience for extracting a typed reply out of a [`Message`].
pub trait AsMessage {
    fn into_reply(self) -> Result<Reply, TdpError>;
}

impl AsMessage for Message {
    fn into_reply(self) -> Result<Reply, TdpError> {
        match self {
            Message::Reply(r) => Ok(r),
            other => Err(TdpError::Protocol(format!("expected reply, got {other:?}"))),
        }
    }
}

/// Application-process status as published by the RM in the `ap_status`
/// attribute (§2.3: "When the RM needs to notify the RT about a change in
/// process status, it places a value in the Attribute Space").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcStatus {
    /// Created but not yet started (stopped at exec).
    Created,
    Running,
    Stopped,
    Exited(i32),
    Killed(i32),
}

impl ProcStatus {
    /// Attribute-value string form.
    pub fn to_attr_value(self) -> String {
        match self {
            ProcStatus::Created => "created".to_string(),
            ProcStatus::Running => "running".to_string(),
            ProcStatus::Stopped => "stopped".to_string(),
            ProcStatus::Exited(c) => format!("exited:{c}"),
            ProcStatus::Killed(s) => format!("killed:{s}"),
        }
    }

    /// Parse the attribute-value string form.
    pub fn parse(s: &str) -> Option<ProcStatus> {
        match s {
            "created" => Some(ProcStatus::Created),
            "running" => Some(ProcStatus::Running),
            "stopped" => Some(ProcStatus::Stopped),
            _ => {
                if let Some(c) = s.strip_prefix("exited:") {
                    c.parse().ok().map(ProcStatus::Exited)
                } else if let Some(c) = s.strip_prefix("killed:") {
                    c.parse().ok().map(ProcStatus::Killed)
                } else {
                    None
                }
            }
        }
    }

    /// True for `Exited` and `Killed`.
    pub fn is_terminal(self) -> bool {
        matches!(self, ProcStatus::Exited(_) | ProcStatus::Killed(_))
    }
}

/// Process-management request an RT writes to the `proc_request`
/// attribute for the RM to service (§2.3 single-point process control).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcRequest {
    Continue,
    Pause,
    Kill(i32),
}

impl ProcRequest {
    pub fn to_attr_value(self) -> String {
        match self {
            ProcRequest::Continue => "continue".to_string(),
            ProcRequest::Pause => "pause".to_string(),
            ProcRequest::Kill(s) => format!("kill:{s}"),
        }
    }

    pub fn parse(s: &str) -> Option<ProcRequest> {
        match s {
            "continue" => Some(ProcRequest::Continue),
            "pause" => Some(ProcRequest::Pause),
            _ => s
                .strip_prefix("kill:")
                .and_then(|c| c.parse().ok())
                .map(ProcRequest::Kill),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_status_roundtrip() {
        for st in [
            ProcStatus::Created,
            ProcStatus::Running,
            ProcStatus::Stopped,
            ProcStatus::Exited(0),
            ProcStatus::Exited(-3),
            ProcStatus::Killed(9),
        ] {
            assert_eq!(ProcStatus::parse(&st.to_attr_value()), Some(st));
        }
    }

    #[test]
    fn proc_status_parse_rejects_garbage() {
        assert_eq!(ProcStatus::parse("flying"), None);
        assert_eq!(ProcStatus::parse("exited:"), None);
        assert_eq!(ProcStatus::parse("exited:x"), None);
    }

    #[test]
    fn terminal_statuses() {
        assert!(ProcStatus::Exited(0).is_terminal());
        assert!(ProcStatus::Killed(9).is_terminal());
        assert!(!ProcStatus::Running.is_terminal());
        assert!(!ProcStatus::Created.is_terminal());
        assert!(!ProcStatus::Stopped.is_terminal());
    }

    #[test]
    fn proc_request_roundtrip() {
        for r in [
            ProcRequest::Continue,
            ProcRequest::Pause,
            ProcRequest::Kill(15),
        ] {
            assert_eq!(ProcRequest::parse(&r.to_attr_value()), Some(r));
        }
        assert_eq!(ProcRequest::parse("dance"), None);
    }

    #[test]
    fn into_reply() {
        let m = Message::Reply(Reply::Ok);
        assert_eq!(m.into_reply().unwrap(), Reply::Ok);
        let m = Message::Join { ctx: ContextId(1) };
        assert!(m.into_reply().is_err());
    }
}
