//! # tdp — The Tool Dæmon Protocol in Rust
//!
//! Umbrella crate re-exporting the whole TDP workspace: the protocol
//! library itself ([`core`]), the simulated substrates it runs on
//! ([`netsim`], [`simos`], [`attrspace`]) and the two systems joined in
//! the paper's Parador prototype — a Condor-like batch scheduler
//! ([`condor`]) and a Paradyn-like profiling tool ([`paradyn`]).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-figure reproduction record.

pub use tdp_attrspace as attrspace;
pub use tdp_condor as condor;
pub use tdp_core as core;
pub use tdp_gateway as gateway;
pub use tdp_grid as grid;
pub use tdp_lsf as lsf;
pub use tdp_mpi as mpi;
pub use tdp_mrnet as mrnet;
pub use tdp_netsim as netsim;
pub use tdp_ops as ops;
pub use tdp_paradyn as paradyn;
pub use tdp_proto as proto;
pub use tdp_simos as simos;
pub use tdp_tools as tools;
pub use tdp_wire as wire;
