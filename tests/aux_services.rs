//! Auxiliary services (§2): "software multicast/reduction networks are
//! crucial to scalable tool use. The RM must be aware of and willing to
//! launch this second kind of non-application entity."
//!
//! Here the RM launches an MRNet-style reduction tree alongside the tool
//! daemons; the daemons attach to it as back-ends, the tool front-end
//! multicasts control and receives reduced metric values.

use std::sync::Arc;
use std::time::Duration;
use tdp::core::{Role, TdpCreate, TdpHandle, World};
use tdp::mrnet::{BackEnd, FrontEnd, ReduceOp, TreeSpec};
use tdp::proto::{names, ContextId, Pid, ProcStatus};
use tdp::simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(15);

#[test]
fn rm_launches_reduction_network_for_tool_daemons() {
    let world = World::new();
    let fe_host = world.add_host();
    let n_hosts = 4usize;
    let hosts: Vec<_> = (0..n_hosts).map(|_| world.add_host()).collect();

    // The RM (front-end side) launches the auxiliary service: an MRNet
    // tree with one attachment point per execution host.
    let (mr_fe, attach) = FrontEnd::build(
        &world.net().clone(),
        fe_host,
        &hosts,
        n_hosts,
        TreeSpec {
            fanout: 2,
            op: ReduceOp::Sum,
        },
    )
    .unwrap();

    // Per-host: an application + a miniature tool daemon that reports
    // its probe totals through the reduction network instead of a
    // point-to-point channel.
    let app = ExecImage::new(
        ["main", "work"],
        Arc::new(|_| {
            fn_program(|ctx| {
                ctx.call("main", |ctx| {
                    for _ in 0..10 {
                        ctx.call("work", |ctx| ctx.compute(7));
                    }
                });
                0
            })
        }),
    );
    for (i, h) in hosts.iter().enumerate() {
        world.os().fs().install_exec(*h, "/bin/app", app.clone());
        let world2 = world.clone();
        let attach_addr = attach[i];
        world.os().fs().install_exec(
            *h,
            "mrtool",
            ExecImage::from_fn(move |_| {
                let world = world2.clone();
                fn_program(move |pctx| {
                    let ctx_id = ContextId(100 + pctx.host().0 as u64);
                    let mut tdp =
                        TdpHandle::init(&world, pctx.host(), ctx_id, "mrtool", Role::Tool)
                            .expect("init");
                    let pid = Pid::parse(&tdp.get(names::PID).expect("pid")).expect("parse");
                    tdp.attach(pid).expect("attach");
                    tdp.arm_probe(pid, "work").expect("arm");
                    // Join the reduction tree launched by the RM.
                    let mut be = BackEnd::connect(world.net(), pctx.host(), attach_addr)
                        .expect("attach mrnet");
                    // Wait for the collective start command.
                    let cmd = be.recv_multicast(T).expect("start cmd");
                    assert_eq!(cmd, b"start");
                    tdp.continue_process(pid).expect("continue");
                    tdp.wait_terminal(pid, T).expect("app done");
                    let snap = tdp.read_probes(pid).expect("probes");
                    // Contribute this host's total to wave 0.
                    be.contribute(0, snap.time.get("work").copied().unwrap_or(0))
                        .expect("reduce");
                    0
                })
            }),
        );
    }

    // The RM on each host: create app paused, launch the tool, put pid.
    let mut rms = Vec::new();
    for h in &hosts {
        let ctx_id = ContextId(100 + h.0 as u64);
        let mut rm = TdpHandle::init(&world, *h, ctx_id, "rm", Role::ResourceManager).unwrap();
        let app_pid = rm
            .create_process(TdpCreate::new("/bin/app").paused())
            .unwrap();
        let tool_pid = rm.create_process(TdpCreate::new("mrtool")).unwrap();
        rm.put(names::PID, &app_pid.to_string()).unwrap();
        rms.push((rm, app_pid, tool_pid));
    }

    // Collective start through the tree; collective result back.
    mr_fe.multicast(b"start").unwrap();
    let total = mr_fe.recv_reduce(0, T).unwrap();
    // Each host: 10 calls × 7 units = 70; 4 hosts = 280.
    assert_eq!(total, 280);

    for (rm, app_pid, tool_pid) in &rms {
        let _ = rm;
        assert_eq!(
            world.os().wait_terminal(*app_pid, T).unwrap(),
            ProcStatus::Exited(0)
        );
        assert_eq!(
            world.os().wait_terminal(*tool_pid, T).unwrap(),
            ProcStatus::Exited(0)
        );
    }
}
