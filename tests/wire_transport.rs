//! The transport-equivalence suite: the Figure 2 (E2) and complete-
//! framework (E11) scenarios run over **real loopback TCP sockets**
//! (`World::new_tcp`) and produce the *same observable behaviour* — up
//! to identical call traces — as the simulated fabric.

use std::sync::Arc;
use std::time::Duration;
use tdp::condor::{CondorPool, JobState};
use tdp::core::{Role, TdpHandle, TransportMode, World};
use tdp::netsim::FirewallPolicy;
use tdp::paradyn::{paradynd_image, ParadynFrontend, PerformanceConsultant};
use tdp::proto::{names, Addr, ContextId, ProcStatus};
use tdp::simos::{fn_program, ExecImage};

const CTX: ContextId = ContextId(1);
const T: Duration = Duration::from_secs(30);

/// The E2 Figure-2 scenario body, transport-agnostic. Returns the
/// rendered call trace.
fn fig2_scenario(world: &World) -> String {
    let fe_host = world.add_host();
    let remote_a = world.add_host();
    let remote_b = world.add_host();

    let cass = world.ensure_cass(fe_host).unwrap();
    let mut rm_a = TdpHandle::init(world, remote_a, CTX, "rm_a", Role::ResourceManager).unwrap();
    let mut rm_b = TdpHandle::init(world, remote_b, CTX, "rm_b", Role::ResourceManager).unwrap();

    rm_a.put(names::PID, "111").unwrap();
    rm_b.put(names::PID, "222").unwrap();
    let mut rt_a = TdpHandle::init(world, remote_a, CTX, "rt_a", Role::Tool).unwrap();
    let mut rt_b = TdpHandle::init(world, remote_b, CTX, "rt_b", Role::Tool).unwrap();
    assert_eq!(rt_a.get(names::PID).unwrap(), "111");
    assert_eq!(rt_b.get(names::PID).unwrap(), "222");

    // Cross-host LASS access is rejected by the server itself — over
    // TCP the client's host identity travels in the Hello handshake.
    let lass_a = world.lass_addr(remote_a).unwrap();
    let mut intruder = world.attr_connect(remote_b, lass_a).unwrap();
    assert!(
        intruder.join(CTX).is_err(),
        "a process cannot access the LASS of another node (§2.1)"
    );

    rm_a.connect_cass(cass).unwrap();
    rm_b.connect_cass(cass).unwrap();
    rm_a.put_central(
        names::TOOL_FRONTEND_ADDR,
        &Addr::new(fe_host, 2090).to_attr_value(),
    )
    .unwrap();
    assert_eq!(
        rm_b.get_central(names::TOOL_FRONTEND_ADDR).unwrap(),
        Addr::new(fe_host, 2090).to_attr_value()
    );
    world.trace().render()
}

#[test]
fn fig2_runs_over_tcp() {
    let world = World::new_tcp();
    assert_eq!(world.transport_mode(), TransportMode::Tcp);
    fig2_scenario(&world);
}

#[test]
fn fig2_trace_identical_across_transports() {
    // Logical addresses are the same strings in both modes, so the call
    // traces must match byte for byte.
    let sim_trace = fig2_scenario(&World::new());
    let tcp_trace = fig2_scenario(&World::new_tcp());
    assert_eq!(sim_trace, tcp_trace);
    assert!(!sim_trace.is_empty());
}

#[test]
fn fig2_proxy_crossing_over_tcp() {
    // The §2.4 firewall crossing, with a real byte-relay proxy: the
    // direct dial is refused by the topology's firewall rules, the
    // handle falls back to the RM's advertised proxy, and the relayed
    // connection behaves like a direct one.
    let world = World::new_tcp();
    let fe_host = world.add_host();
    let zone = world.add_private_zone(FirewallPolicy::STRICT);
    let remote = world.add_host_in(zone);
    let cass = world.ensure_cass(fe_host).unwrap();

    world.net().authorize_route(remote, cass);
    let proxy = world.spawn_proxy(remote, 9618).unwrap();
    assert_eq!(
        proxy,
        Addr::new(remote, 9618),
        "proxy keeps its logical address"
    );

    let mut rm = TdpHandle::init(&world, remote, CTX, "rm", Role::ResourceManager).unwrap();
    rm.advertise_proxy(proxy).unwrap();
    let mut rt = TdpHandle::init(&world, remote, CTX, "rt", Role::Tool).unwrap();
    rt.connect_cass(cass).unwrap();
    rt.put_central("announce", "rt alive").unwrap();
    rm.connect_cass(cass).unwrap();
    assert_eq!(rm.get_central("announce").unwrap(), "rt alive");
}

#[test]
fn tcp_world_enforces_firewalls_without_a_proxy() {
    // No proxy advertised: the firewalled connect must fail fast with
    // the same error family as the simulated fabric, not hang on a
    // socket that was never reachable.
    let world = World::new_tcp();
    let fe_host = world.add_host();
    let zone = world.add_private_zone(FirewallPolicy::STRICT);
    let remote = world.add_host_in(zone);
    let cass = world.ensure_cass(fe_host).unwrap();
    let err = match world.attr_connect(remote, cass) {
        Err(e) => e,
        Ok(_) => panic!("firewalled connect must fail"),
    };
    assert!(
        matches!(err, tdp::proto::TdpError::BlockedByFirewall { .. }),
        "{err}"
    );
}

fn app_image() -> ExecImage {
    ExecImage::new(
        ["main", "kernel"],
        Arc::new(|_| {
            fn_program(|ctx| {
                let _ = ctx.read_stdin();
                ctx.call("main", |ctx| {
                    for _ in 0..12 {
                        ctx.call("kernel", |ctx| ctx.compute(10));
                    }
                });
                0
            })
        }),
    )
}

#[test]
fn complete_framework_condor_over_tcp() {
    // E11's "no port arguments anywhere" scenario with every
    // attribute-space byte crossing real sockets.
    let world = World::new_tcp();
    let pool = CondorPool::build(&world, 2).unwrap();
    pool.install_everywhere("/bin/app", app_image());
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 0, 0).unwrap();
    fe.advertise_via_cass(&world).unwrap();

    let job = pool
        .submit_str(
            "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"paradynd\"\n+ToolDaemonArgs = \"-zunix -a%pid\"\nqueue\n",
        )
        .unwrap();
    let daemons = fe.wait_for_daemons(1, T).unwrap();
    assert_eq!(daemons.len(), 1);
    fe.run_all().unwrap();
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    fe.wait_done(1, T).unwrap();
    let b = PerformanceConsultant::default()
        .search(&fe.samples())
        .unwrap();
    assert_eq!(b.symbol, "kernel");
}

#[test]
fn complete_framework_trace_identical_across_transports() {
    fn scenario(world: &World) -> String {
        let pool = CondorPool::build(world, 1).unwrap();
        pool.install_everywhere("/bin/app", app_image());
        for h in pool.exec_hosts() {
            world
                .os()
                .fs()
                .install_exec(*h, "paradynd", paradynd_image(world.clone()));
        }
        let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 0, 0).unwrap();
        fe.advertise_via_cass(world).unwrap();
        let job = pool
            .submit_str(
                "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"paradynd\"\n+ToolDaemonArgs = \"-zunix -a%pid\"\nqueue\n",
            )
            .unwrap();
        fe.wait_for_daemons(1, T).unwrap();
        fe.run_all().unwrap();
        assert!(matches!(
            pool.wait_job(job, T).unwrap(),
            JobState::Completed(_)
        ));
        fe.wait_done(1, T).unwrap();
        world.trace().render()
    }
    let sim = scenario(&World::new());
    let tcp = scenario(&World::new_tcp());
    assert_eq!(sim, tcp);
}
