//! The transport-equivalence suite: the Figure 2 (E2) and complete-
//! framework (E11) scenarios run over every backend `tdp-wire` ships —
//! the simulated fabric, real loopback TCP sockets (`World::new_tcp`),
//! and the epoll reactor (`World::new_epoll`) — and produce the *same
//! observable behaviour*, up to identical call traces. The reactor
//! backend additionally has to do it with a bounded thread count: the
//! 500-session soak at the bottom is the scaling claim of ROADMAP's
//! async-backend item.

use std::sync::Arc;
use std::time::Duration;
use tdp::condor::{CondorPool, JobState};
use tdp::core::{Role, TdpHandle, TransportMode, World};
use tdp::netsim::FirewallPolicy;
use tdp::paradyn::{paradynd_image, ParadynFrontend, PerformanceConsultant};
use tdp::proto::{names, Addr, ContextId, ProcStatus};
use tdp::simos::{fn_program, ExecImage};

const CTX: ContextId = ContextId(1);
const T: Duration = Duration::from_secs(30);

/// The socket-backed worlds, labelled for assertion messages. Every
/// scenario below runs over each of these plus the netsim default.
fn socket_worlds() -> Vec<(&'static str, World)> {
    vec![("tcp", World::new_tcp()), ("epoll", World::new_epoll())]
}

/// The E2 Figure-2 scenario body, transport-agnostic. Returns the
/// rendered call trace.
fn fig2_scenario(world: &World) -> String {
    let fe_host = world.add_host();
    let remote_a = world.add_host();
    let remote_b = world.add_host();

    let cass = world.ensure_cass(fe_host).unwrap();
    let mut rm_a = TdpHandle::init(world, remote_a, CTX, "rm_a", Role::ResourceManager).unwrap();
    let mut rm_b = TdpHandle::init(world, remote_b, CTX, "rm_b", Role::ResourceManager).unwrap();

    rm_a.put(names::PID, "111").unwrap();
    rm_b.put(names::PID, "222").unwrap();
    let mut rt_a = TdpHandle::init(world, remote_a, CTX, "rt_a", Role::Tool).unwrap();
    let mut rt_b = TdpHandle::init(world, remote_b, CTX, "rt_b", Role::Tool).unwrap();
    assert_eq!(rt_a.get(names::PID).unwrap(), "111");
    assert_eq!(rt_b.get(names::PID).unwrap(), "222");

    // Cross-host LASS access is rejected by the server itself — over
    // real sockets the client's host identity travels in the Hello
    // handshake.
    let lass_a = world.lass_addr(remote_a).unwrap();
    let mut intruder = world.attr_connect(remote_b, lass_a).unwrap();
    assert!(
        intruder.join(CTX).is_err(),
        "a process cannot access the LASS of another node (§2.1)"
    );

    rm_a.connect_cass(cass).unwrap();
    rm_b.connect_cass(cass).unwrap();
    rm_a.put_central(
        names::TOOL_FRONTEND_ADDR,
        &Addr::new(fe_host, 2090).to_attr_value(),
    )
    .unwrap();
    assert_eq!(
        rm_b.get_central(names::TOOL_FRONTEND_ADDR).unwrap(),
        Addr::new(fe_host, 2090).to_attr_value()
    );
    world.trace().render()
}

#[test]
fn fig2_runs_over_socket_backends() {
    for (name, world) in socket_worlds() {
        assert_ne!(world.transport_mode(), TransportMode::Netsim, "{name}");
        fig2_scenario(&world);
    }
}

#[test]
fn fig2_trace_identical_across_transports() {
    // Logical addresses are the same strings in every mode, so the call
    // traces must match byte for byte.
    let sim_trace = fig2_scenario(&World::new());
    assert!(!sim_trace.is_empty());
    for (name, world) in socket_worlds() {
        let trace = fig2_scenario(&world);
        assert_eq!(sim_trace, trace, "trace diverged on the {name} backend");
    }
}

/// The §2.4 firewall crossing, with a real byte-relay proxy: the
/// direct dial is refused by the topology's firewall rules, the
/// handle falls back to the RM's advertised proxy, and the relayed
/// connection behaves like a direct one.
fn proxy_crossing_scenario(world: &World) {
    let fe_host = world.add_host();
    let zone = world.add_private_zone(FirewallPolicy::STRICT);
    let remote = world.add_host_in(zone);
    let cass = world.ensure_cass(fe_host).unwrap();

    world.net().authorize_route(remote, cass);
    let proxy = world.spawn_proxy(remote, 9618).unwrap();
    assert_eq!(
        proxy,
        Addr::new(remote, 9618),
        "proxy keeps its logical address"
    );

    let mut rm = TdpHandle::init(world, remote, CTX, "rm", Role::ResourceManager).unwrap();
    rm.advertise_proxy(proxy).unwrap();
    let mut rt = TdpHandle::init(world, remote, CTX, "rt", Role::Tool).unwrap();
    rt.connect_cass(cass).unwrap();
    rt.put_central("announce", "rt alive").unwrap();
    rm.connect_cass(cass).unwrap();
    assert_eq!(rm.get_central("announce").unwrap(), "rt alive");
}

#[test]
fn fig2_proxy_crossing_over_socket_backends() {
    for (_name, world) in socket_worlds() {
        proxy_crossing_scenario(&world);
    }
}

#[test]
fn socket_worlds_enforce_firewalls_without_a_proxy() {
    // No proxy advertised: the firewalled connect must fail fast with
    // the same error family as the simulated fabric, not hang on a
    // socket that was never reachable.
    for (name, world) in socket_worlds() {
        let fe_host = world.add_host();
        let zone = world.add_private_zone(FirewallPolicy::STRICT);
        let remote = world.add_host_in(zone);
        let cass = world.ensure_cass(fe_host).unwrap();
        let err = match world.attr_connect(remote, cass) {
            Err(e) => e,
            Ok(_) => panic!("firewalled connect must fail ({name})"),
        };
        assert!(
            matches!(err, tdp::proto::TdpError::BlockedByFirewall { .. }),
            "{name}: {err}"
        );
    }
}

fn app_image() -> ExecImage {
    ExecImage::new(
        ["main", "kernel"],
        Arc::new(|_| {
            fn_program(|ctx| {
                let _ = ctx.read_stdin();
                ctx.call("main", |ctx| {
                    for _ in 0..12 {
                        ctx.call("kernel", |ctx| ctx.compute(10));
                    }
                });
                0
            })
        }),
    )
}

/// E11's "no port arguments anywhere" scenario with every
/// attribute-space byte crossing real sockets. Returns the call trace
/// projected per actor: the scenario runs several daemons concurrently
/// and the *global* interleaving of their trace lines is scheduler
/// noise on any transport (two netsim runs already differ — cf. the
/// Figure 3 caption: creation order across processes is explicitly
/// free), but each actor's own call sequence is deterministic and must
/// be byte-identical across backends.
fn complete_framework_scenario(world: &World) -> std::collections::BTreeMap<String, Vec<String>> {
    let pool = CondorPool::build(world, 1).unwrap();
    pool.install_everywhere("/bin/app", app_image());
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 0, 0).unwrap();
    fe.advertise_via_cass(world).unwrap();
    let job = pool
        .submit_str(
            "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"paradynd\"\n+ToolDaemonArgs = \"-zunix -a%pid\"\nqueue\n",
        )
        .unwrap();
    fe.wait_for_daemons(1, T).unwrap();
    fe.run_all().unwrap();
    assert!(matches!(
        pool.wait_job(job, T).unwrap(),
        JobState::Completed(_)
    ));
    fe.wait_done(1, T).unwrap();
    // `wait_job` returns on the shadow's JobDone, but the starter only
    // records its `tdp_exit()` *after* that exchange — wait for the
    // known tail event, then for the trace to quiesce, so the snapshot
    // doesn't race the scenario's own shutdown.
    let deadline = std::time::Instant::now() + T;
    while world
        .trace()
        .seq_of(Some("starter"), "tdp_exit()")
        .is_none()
    {
        assert!(std::time::Instant::now() < deadline, "starter never exited");
        std::thread::park_timeout(Duration::from_millis(1));
    }
    let mut len = world.trace().events().len();
    loop {
        std::thread::park_timeout(Duration::from_millis(20));
        let now = world.trace().events().len();
        if now == len || std::time::Instant::now() >= deadline {
            break;
        }
        len = now;
    }
    let mut by_actor = std::collections::BTreeMap::<String, Vec<String>>::new();
    for ev in world.trace().events() {
        by_actor.entry(ev.actor).or_default().push(ev.call);
    }
    by_actor
}

#[test]
fn complete_framework_condor_over_socket_backends() {
    for (name, world) in socket_worlds() {
        let pool = CondorPool::build(&world, 2).unwrap();
        pool.install_everywhere("/bin/app", app_image());
        for h in pool.exec_hosts() {
            world
                .os()
                .fs()
                .install_exec(*h, "paradynd", paradynd_image(world.clone()));
        }
        let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 0, 0).unwrap();
        fe.advertise_via_cass(&world).unwrap();

        let job = pool
            .submit_str(
                "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"paradynd\"\n+ToolDaemonArgs = \"-zunix -a%pid\"\nqueue\n",
            )
            .unwrap();
        let daemons = fe.wait_for_daemons(1, T).unwrap();
        assert_eq!(daemons.len(), 1, "{name}");
        fe.run_all().unwrap();
        match pool.wait_job(job, T).unwrap() {
            JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0), "{name}"),
            other => panic!("{name}: {other:?}"),
        }
        fe.wait_done(1, T).unwrap();
        let b = PerformanceConsultant::default()
            .search(&fe.samples())
            .unwrap();
        assert_eq!(b.symbol, "kernel", "{name}");
    }
}

#[test]
fn complete_framework_trace_identical_across_transports() {
    let sim = complete_framework_scenario(&World::new());
    for (name, world) in socket_worlds() {
        let trace = complete_framework_scenario(&world);
        assert_eq!(sim, trace, "E11 trace diverged on the {name} backend");
    }
}

#[test]
fn epoll_soak_500_sessions_bounded_threads() {
    // ROADMAP's scaling claim: a CASS front-end holding 500 live
    // attribute-space sessions must not cost 2×500 wire threads. On the
    // reactor backend all 500 sockets share one reactor plus its worker
    // pool; we count the reactor-owned threads by name (other tests in
    // this binary run concurrently and own their own wire threads, so
    // the census filters to the epoll-specific ones).
    let world = World::new_epoll();
    let fe = world.add_host();
    let cass = world.ensure_cass(fe).unwrap();
    let mut sessions = Vec::with_capacity(500);
    for i in 0..500u64 {
        let mut c = world.attr_connect(fe, cass).unwrap();
        let ctx = ContextId(i);
        c.join(ctx).unwrap();
        c.put(ctx, "session", &format!("s{i}")).unwrap();
        sessions.push((ctx, c));
    }
    let reactor_threads = tdp::wire::wire_threads()
        .into_iter()
        .filter(|n| n.starts_with("wire-reactor") || n.starts_with("wire-epoll"))
        .count();
    // Budget per world: the reactor shards plus each shard's worker
    // slice (both default from available_parallelism, so the bound
    // scales with the host instead of being hard-coded). Other tests in
    // this binary own epoll worlds of their own that may still be
    // winding down — allow a few, and never go below the pre-sharding
    // fixed bound of 16 on small hosts.
    let cfg = tdp::wire::EpollConfig::default();
    let shards = cfg.reactors.max(1);
    let per_world = shards + shards * cfg.workers.max(1).div_ceil(shards);
    let budget = (4 * per_world).max(16);
    assert!(
        reactor_threads <= budget,
        "500 sessions should share O(pool) reactor threads \
         (≤{budget} across concurrent test worlds), found {reactor_threads}"
    );
    // Every session is still live after the census — spot-check them
    // all, not just the survivors of an LRU.
    for (ctx, c) in sessions.iter_mut() {
        let i = ctx.0;
        assert_eq!(c.get(*ctx, "session").unwrap(), format!("s{i}"));
    }
}
