//! Fault detection and recovery — the paper lists this as a required RM
//! capability ("Any of the three entities launched by the RM (AP, RT,
//! AS) can fail during execution. The RM must be able to detect these
//! failures, respond to them, and perhaps communicate their occurrence
//! to the other entities") while deferring the full model to future
//! work. These tests exercise our implementation of that extension.

use std::sync::Arc;
use std::time::Duration;
use tdp::core::{Role, TdpCreate, TdpHandle, World};
use tdp::proto::{names, ContextId, HostId, ProcStatus, TdpError};
use tdp::simos::{fn_program, ExecImage};

const CTX: ContextId = ContextId(1);
const T: Duration = Duration::from_secs(10);

/// Every transport backend: the recovery behaviour under test is
/// transport-independent, so each scenario runs over all of them (the
/// same parameterization as the wire-transport suite).
fn worlds() -> Vec<(&'static str, World)> {
    vec![
        ("netsim", World::new()),
        ("tcp", World::new_tcp()),
        ("epoll", World::new_epoll()),
    ]
}

fn add_app_host(w: &World) -> HostId {
    let h = w.add_host();
    w.os().fs().install_exec(
        h,
        "/bin/app",
        ExecImage::new(
            ["main"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| {
                        for _ in 0..100 {
                            ctx.sleep(Duration::from_millis(5));
                        }
                    });
                    0
                })
            }),
        ),
    );
    h
}

#[test]
fn ap_crash_is_observed_and_communicated() {
    for (_backend, w) in worlds() {
        let h = add_app_host(&w);
        ap_crash_scenario(&w, h);
    }
}

/// The AP dies; the RM detects it via status monitoring and
/// communicates it to the RT through the attribute space (§2.3).
fn ap_crash_scenario(w: &World, h: HostId) {
    w.os().fs().install_exec(
        h,
        "/bin/crasher",
        ExecImage::from_fn(|_| fn_program(|_ctx| panic!("simulated fault"))),
    );
    let mut rm = TdpHandle::init(w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let mut rt = TdpHandle::init(w, h, CTX, "rt", Role::Tool).unwrap();
    let pid = rm.create_process(TdpCreate::new("/bin/crasher")).unwrap();
    let st = rm.wait_terminal(pid, T).unwrap();
    assert_eq!(st, ProcStatus::Killed(11));
    rm.publish_status(st).unwrap();
    assert_eq!(rt.published_status().unwrap(), Some(ProcStatus::Killed(11)));
}

#[test]
fn rt_crash_does_not_take_down_the_application() {
    for (_backend, w) in worlds() {
        let h = add_app_host(&w);
        rt_crash_scenario(&w, h);
    }
}

/// The tool daemon dies mid-run: the AP keeps running and the RM can
/// attach a replacement tool (the tracer slot is freed when the dead
/// daemon's handle drops).
fn rt_crash_scenario(w: &World, h: HostId) {
    let mut rm = TdpHandle::init(w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let app = rm.create_process(TdpCreate::new("/bin/app")).unwrap();

    // An RT that attaches then crashes.
    w.os().fs().install_exec(
        h,
        "/bin/fragile_rt",
        ExecImage::from_fn({
            let w = w.clone();
            move |_| {
                let w = w.clone();
                fn_program(move |pctx| {
                    let mut tdp =
                        TdpHandle::init(&w, pctx.host(), CTX, "fragile", Role::Tool).unwrap();
                    let pid = tdp::proto::Pid::parse(&tdp.get(names::PID).unwrap()).unwrap();
                    tdp.attach(pid).unwrap();
                    panic!("tool daemon fault");
                })
            }
        }),
    );
    let rt = rm
        .create_process(TdpCreate::new("/bin/fragile_rt"))
        .unwrap();
    rm.put(names::PID, &app.to_string()).unwrap();
    assert_eq!(rm.wait_terminal(rt, T).unwrap(), ProcStatus::Killed(11));
    // The AP survived its tool.
    assert_eq!(w.os().status(app).unwrap(), ProcStatus::Running);
    // A replacement tool can attach (the crashed daemon's TraceHandle
    // was dropped during unwind).
    let mut rt2 = TdpHandle::init(w, h, CTX, "rt2", Role::Tool).unwrap();
    rt2.attach(app).unwrap();
    rt2.kill_process(app, 9).unwrap();
}

#[test]
fn lass_crash_fails_operations_cleanly() {
    // The attribute-space server dies: daemons get errors, not hangs.
    for (_backend, w) in worlds() {
        let h = add_app_host(&w);
        let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
        rm.put("k", "v").unwrap();
        w.kill_lass(h);
        let err = rm.put("k2", "v2");
        assert!(err.is_err(), "operations against a dead LASS must fail");
        // A fresh RM init restarts the LASS on the well-known port
        // (empty: the space died with the server).
        let mut rm2 = TdpHandle::init(&w, h, CTX, "rm2", Role::ResourceManager).unwrap();
        assert!(matches!(
            rm2.try_get("k"),
            Err(TdpError::AttributeNotFound(_))
        ));
        rm2.put("k", "v3").unwrap();
    }
}

#[test]
fn host_failure_severs_everything_on_it() {
    let w = World::new();
    let submit = w.add_host();
    let exec = w.add_host();
    w.os().fs().install_exec(
        exec,
        "/bin/app",
        ExecImage::from_fn(|_| {
            fn_program(|ctx| {
                ctx.sleep(Duration::from_secs(60));
                0
            })
        }),
    );
    let mut rm = TdpHandle::init(&w, exec, CTX, "rm", Role::ResourceManager).unwrap();
    let _app = rm.create_process(TdpCreate::new("/bin/app")).unwrap();
    // A monitoring connection from the submit machine.
    let lass = w.lass_addr(exec).unwrap();
    let mut probe = w.net().connect(submit, lass).unwrap();
    w.net().kill_host(exec);
    // The connection is severed…
    assert!(matches!(
        probe.recv_timeout(Duration::from_secs(2)),
        Err(TdpError::Disconnected)
    ));
    // …and nothing new can reach the dead host.
    assert!(w.net().connect(submit, lass).is_err());
}

#[test]
fn heartbeat_attribute_detects_silent_tool() {
    // The fault-model extension: the RT heartbeats through the space;
    // the RM notices staleness. (A crashed RT stops heartbeating even
    // though its process table entry may linger.)
    for (_backend, w) in worlds() {
        let h = add_app_host(&w);
        let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
        let mut rt = TdpHandle::init(&w, h, CTX, "rt", Role::Tool).unwrap();
        rt.put(names::HEARTBEAT, "1").unwrap();
        assert_eq!(rm.get(names::HEARTBEAT).unwrap(), "1");
        rt.put(names::HEARTBEAT, "2").unwrap();
        assert_eq!(rm.get(names::HEARTBEAT).unwrap(), "2");
        // RT "crashes" (drops without exit): beats are synchronous
        // round trips, so once the handle is gone no further beat can
        // be in flight — the counter is deterministically stale.
        drop(rt);
        assert_eq!(rm.get(names::HEARTBEAT).unwrap(), "2", "no further beats");
    }
}

#[test]
fn schedd_requeues_rank_after_starter_failure() {
    // Two machines; the executable exists only on the second. The
    // matchmaker (ranked) prefers the broken one first; the starter
    // fails there (NoSuchFile), the schedd requeues, and the job
    // completes on the good machine.
    use tdp::condor::classad::ClassAd;
    use tdp::condor::startd::Startd;
    use tdp::condor::{JobState, Matchmaker, Schedd, SubmitDescription};

    let w = World::new();
    let cm = w.add_host();
    let submit_host = w.add_host();
    let broken = w.add_host();
    let good = w.add_host();
    let mm = Matchmaker::start(w.net(), cm).unwrap();
    // The broken machine ranks higher.
    let _s1 = Startd::start(&w, broken, ClassAd::new().with_int("Prio", 100), mm.addr()).unwrap();
    let _s2 = Startd::start(&w, good, ClassAd::new().with_int("Prio", 1), mm.addr()).unwrap();
    w.os().fs().install_exec(
        good,
        "/bin/app",
        ExecImage::from_fn(|_| {
            fn_program(|ctx| {
                ctx.call("main", |ctx| ctx.compute(5));
                0
            })
        }),
    );
    let schedd = Schedd::start(&w, submit_host, mm.addr());
    let mut d = SubmitDescription::parse("executable = /bin/app\nrank = Prio\nqueue\n").unwrap();
    d.transfer_files = false;
    let job = schedd.submit(d);
    match schedd.wait_job(job, Duration::from_secs(30)).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
}

#[test]
fn job_fails_when_no_machine_can_run_it() {
    // The executable exists nowhere: every requeue fails until the
    // budget is exhausted and the job reports failure (not a hang).
    use tdp::condor::CondorPool;
    use tdp::condor::JobState;
    let w = World::new();
    let pool = CondorPool::build(&w, 2).unwrap();
    let job = pool.submit_str("executable = /bin/ghost\nqueue\n").unwrap();
    match pool.wait_job(job, Duration::from_secs(60)).unwrap() {
        JobState::Failed(e) => {
            assert!(e.contains("requeues") || e.contains("replacement"), "{e}")
        }
        other => panic!("{other:?}"),
    }
}
