//! **E7 — Figure 6**: "TDP Function Calls from the Condor and Paradyn
//! Sides" — the four-step launching sequence, verified call by call
//! against the recorded TDP trace.
//!
//! Step 1: the starter executes `tdp_init` to create the LASS, then
//!         launches the application with `tdp_create_process(paused)`;
//! Step 2: the starter launches paradynd with `tdp_create_process`
//!         (not paused); paradynd finds no process reference in its
//!         argv and assumes the TDP framework;
//! Step 3: paradynd calls `tdp_init`, blocks in `tdp_get("pid")` until
//!         the starter's `tdp_put`, then `tdp_attach` and
//!         `tdp_continue_process`;
//! Step 4: paradynd controls the application as usual.

use std::sync::Arc;
use std::time::Duration;
use tdp::condor::{CondorPool, JobState};
use tdp::core::World;
use tdp::paradyn::{paradynd_image, ParadynFrontend};
use tdp::simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(30);

#[test]
fn fig6_call_sequence_reproduced() {
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere(
        "/bin/app",
        ExecImage::new(
            ["main", "work"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| ctx.call("work", |ctx| ctx.compute(10)));
                    0
                })
            }),
        ),
    );
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();
    let submit = format!(
        "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"paradynd\"\n+ToolDaemonArgs = \"-m{} -p{} -P{} -a%pid\"\nqueue\n",
        fe.host().0,
        fe.control_addr().port.0,
        fe.data_addr().port.0,
    );
    let job = pool.submit_str(&submit).unwrap();
    fe.wait_for_daemons(1, T).unwrap();
    fe.run_all().unwrap();
    assert!(matches!(
        pool.wait_job(job, T).unwrap(),
        JobState::Completed(_)
    ));

    let tr = world.trace();
    let starter = Some("starter");
    // Step 1: tdp_init then create(AP, paused).
    tr.assert_order(
        (starter, "tdp_init"),
        (starter, "tdp_create_process(/bin/app, paused)"),
    );
    // Step 2: then create(paradynd, run).
    tr.assert_order(
        (starter, "tdp_create_process(/bin/app, paused)"),
        (starter, "tdp_create_process(paradynd, run)"),
    );
    // Step 3 (paradynd side): its own tdp_init, the (possibly blocking)
    // get, then attach and continue. Whether the get is *issued* before
    // or after the starter's put is a legal race — the space's blocking
    // semantics make both interleavings equivalent — but the attach can
    // only ever happen after both.
    tr.assert_order(
        (starter, "tdp_create_process(paradynd, run)"),
        (None, "tdp_get(pid)"),
    );
    tr.assert_order((starter, "tdp_put(pid)"), (None, "tdp_attach"));
    tr.assert_order((None, "tdp_get(pid)"), (None, "tdp_attach"));
    tr.assert_order((None, "tdp_attach"), (None, "tdp_continue_process"));

    // paradynd's init must precede its get (it needs the handle).
    let daemon_actor = tr
        .events()
        .iter()
        .find(|e| e.actor.starts_with("paradynd"))
        .map(|e| e.actor.clone())
        .expect("paradynd events recorded");
    let d = Some(daemon_actor.as_str());
    tr.assert_order((d, "tdp_init"), (d, "tdp_get(pid)"));
    tr.assert_order((d, "tdp_attach"), (d, "tdp_continue_process"));
    // And its clean shutdown.
    tr.assert_order((d, "tdp_continue_process"), (d, "tdp_exit"));
}

#[test]
fn fig6_get_pid_blocks_until_put() {
    // The blocking behaviour itself: tdp_get("pid") parks paradynd. We
    // time the gap between daemon creation and READY with an
    // artificially delayed put by pausing the starter… which we can't
    // do directly, so instead verify via the trace that the get was
    // issued strictly before the put landed, yet attach only happened
    // after.
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere(
        "/bin/app",
        ExecImage::new(
            ["main"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| ctx.compute(1));
                    0
                })
            }),
        ),
    );
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();
    let submit = format!(
        "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"paradynd\"\n+ToolDaemonArgs = \"-m{} -p{} -P{} -a%pid\"\nqueue\n",
        fe.host().0,
        fe.control_addr().port.0,
        fe.data_addr().port.0,
    );
    let job = pool.submit_str(&submit).unwrap();
    fe.wait_for_daemons(1, T).unwrap();
    fe.run_all().unwrap();
    pool.wait_job(job, T).unwrap();

    let tr = world.trace();
    let get_seq = tr.seq_of(None, "tdp_get(pid)").expect("get recorded");
    let put_seq = tr
        .seq_of(Some("starter"), "tdp_put(pid)")
        .expect("put recorded");
    let attach_seq = tr.seq_of(None, "tdp_attach").expect("attach recorded");
    assert!(
        get_seq < put_seq || put_seq < get_seq,
        "both orders are legal for issue time"
    );
    assert!(attach_seq > put_seq, "attach cannot precede the pid put");
    assert!(attach_seq > get_seq, "attach follows the (satisfied) get");
}
