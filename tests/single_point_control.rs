//! §2.3 single-point process control, end to end: "Under TDP, the
//! responsibility for controlling an application process and for
//! monitoring its status belongs to the RM … When the RT needs to
//! perform a process management operation, it contacts the RM."
//!
//! With paradynd's `-S` flag, the daemon never calls a process-control
//! primitive itself: pause/continue/kill are filed as `proc_request`
//! attributes, serviced by the starter, whose actions are visible in
//! the TDP call trace.

use std::sync::Arc;
use std::time::Duration;
use tdp::condor::{CondorPool, JobState};
use tdp::core::World;
use tdp::paradyn::{paradynd_image, ParadynFrontend};
use tdp::proto::ProcStatus;
use tdp::simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(30);

fn slow_app() -> ExecImage {
    ExecImage::new(
        ["main", "tick"],
        Arc::new(|_| {
            fn_program(|ctx| {
                ctx.call("main", |ctx| {
                    for _ in 0..400 {
                        ctx.call("tick", |ctx| ctx.sleep(Duration::from_millis(2)));
                    }
                });
                0
            })
        }),
    )
}

fn setup() -> (World, CondorPool, ParadynFrontend) {
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere("/bin/app", slow_app());
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();
    (world, pool, fe)
}

fn submit_with(fe: &ParadynFrontend, extra: &str) -> String {
    format!(
        "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"paradynd\"\n+ToolDaemonArgs = \"-m{} -p{} -P{} -a%pid{extra}\"\nqueue\n",
        fe.host().0,
        fe.control_addr().port.0,
        fe.data_addr().port.0,
    )
}

#[test]
fn strict_mode_routes_all_control_through_the_rm() {
    let (world, pool, fe) = setup();
    let job = pool.submit_str(&submit_with(&fe, " -S")).unwrap();
    let daemons = fe.wait_for_daemons(1, T).unwrap();
    let app_pid = daemons[0].pid;

    // Run command: daemon files Continue; the starter executes it.
    fe.run_all().unwrap();
    let deadline = std::time::Instant::now() + T;
    while world.os().status(app_pid).unwrap() == ProcStatus::Created {
        assert!(
            std::time::Instant::now() < deadline,
            "starter never serviced Continue"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Pause through the same path.
    fe.pause_all().unwrap();
    let deadline = std::time::Instant::now() + T;
    while world.os().status(app_pid).unwrap() != ProcStatus::Stopped {
        assert!(
            std::time::Instant::now() < deadline,
            "starter never serviced Pause"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Resume and kill through it too.
    fe.run_all().unwrap();
    fe.kill_all().unwrap();
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Killed(9)),
        other => panic!("{other:?}"),
    }

    // The trace proves the division of labour: the *starter* performed
    // every state-changing operation; the daemon's only control-flavour
    // calls are tdp_request(...).
    let tr = world.trace();
    let daemon_actor = tr
        .events()
        .iter()
        .find(|e| e.actor.starts_with("paradynd"))
        .map(|e| e.actor.clone())
        .expect("daemon events");
    for ev in tr.events() {
        if ev.actor == daemon_actor {
            assert!(
                !ev.call.starts_with("tdp_continue_process")
                    && !ev.call.starts_with("tdp_pause_process")
                    && !ev.call.starts_with("tdp_kill"),
                "daemon touched the process directly in strict mode: {}",
                ev.call
            );
        }
    }
    assert!(tr
        .seq_of(Some(&daemon_actor), "tdp_request(continue)")
        .is_some());
    assert!(tr
        .seq_of(Some(&daemon_actor), "tdp_request(pause)")
        .is_some());
    assert!(tr
        .seq_of(Some(&daemon_actor), "tdp_request(kill:9)")
        .is_some());
    assert!(tr.seq_of(Some("starter"), "tdp_continue_process").is_some());
    assert!(tr.seq_of(Some("starter"), "tdp_pause_process").is_some());
    assert!(tr.seq_of(Some("starter"), "tdp_kill").is_some());
}

#[test]
fn default_mode_daemon_acts_directly() {
    // Without -S the pilot-faithful fast path applies: the daemon (as
    // the attached tracer) continues the process itself.
    let (world, pool, fe) = setup();
    let job = pool.submit_str(&submit_with(&fe, "")).unwrap();
    fe.wait_for_daemons(1, T).unwrap();
    fe.run_all().unwrap();
    fe.kill_all().unwrap();
    assert!(matches!(
        pool.wait_job(job, T).unwrap(),
        JobState::Completed(_)
    ));
    let tr = world.trace();
    let daemon_actor = tr
        .events()
        .iter()
        .find(|e| e.actor.starts_with("paradynd"))
        .map(|e| e.actor.clone())
        .unwrap();
    assert!(
        tr.seq_of(Some(&daemon_actor), "tdp_continue_process")
            .is_some(),
        "default mode: the daemon continues the process directly"
    );
}
