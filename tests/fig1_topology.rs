//! **E1 — Figure 1**: "Remote Execution with Resource Manager and
//! Run-Time Tool".
//!
//! The figure shows the RM front-end and RT front-end on the user's side
//! of a firewall; the RM, RT and AP together on a remote host behind it.
//! The executable property of the figure is the communication
//! reachability it implies: the RT on the remote host cannot reach its
//! front-end directly and must go through the RM's proxy (§2.4).

use std::time::Duration;
use tdp::core::{Role, TdpCreate, TdpHandle, World};
use tdp::netsim::FirewallPolicy;
use tdp::proto::{Addr, ContextId, ProcStatus, TdpError};
use tdp::simos::{fn_program, ExecImage};

const CTX: ContextId = ContextId(1);
const T: Duration = Duration::from_secs(10);

#[test]
fn fig1_remote_execution_behind_firewall() {
    let world = World::new();
    // User's side: RM front-end and RT front-end hosts (public).
    let rm_fe_host = world.add_host();
    let rt_fe_host = world.add_host();
    // Remote host behind a strict firewall; the RM's gateway machine
    // (where its proxy lives) sits in the same private zone and holds
    // the only authorized route out.
    let zone = world.add_private_zone(FirewallPolicy::STRICT);
    let remote = world.add_host_in(zone);
    let gateway = world.add_host_in(zone);

    // The RT front-end listens for its daemon.
    let rt_fe_listener = world.net().listen(rt_fe_host, 2090).unwrap();
    let rt_fe_addr = Addr::new(rt_fe_host, 2090);

    // The application binary on the remote host.
    world.os().fs().install_exec(
        remote,
        "/bin/app",
        ExecImage::new(
            ["main"],
            std::sync::Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| ctx.compute(10));
                    0
                })
            }),
        ),
    );

    // The RM daemon on the remote host: owns process creation (Fig 1
    // arrows RM→AP) and provides the proxy (RM→firewall→front-ends).
    let mut rm = TdpHandle::init(&world, remote, CTX, "rm", Role::ResourceManager).unwrap();
    let app = rm
        .create_process(TdpCreate::new("/bin/app").paused())
        .unwrap();

    // The RM's pre-existing authorized route + proxy (its own channel to
    // its front-end in the figure) runs on the gateway.
    world.net().authorize_route(gateway, rt_fe_addr);
    let proxy = tdp::netsim::proxy::spawn(world.net(), gateway, 9618).unwrap();
    rm.advertise_frontend(rt_fe_addr).unwrap();
    rm.advertise_proxy(proxy.addr()).unwrap();

    // The RT daemon on the remote host (Fig 1 arrows RT→AP, RT→RT-FE).
    let mut rt = TdpHandle::init(&world, remote, CTX, "rt", Role::Tool).unwrap();
    // Direct connection is blocked by the firewall — the defining
    // property of the topology…
    let direct = world.net().connect(remote, rt_fe_addr);
    assert!(
        matches!(direct, Err(TdpError::BlockedByFirewall { .. })),
        "the firewall must separate the remote host from the front-ends"
    );
    // …but the TDP channel helper transparently uses the RM proxy.
    let chan = rt.open_tool_channel().unwrap();
    chan.send(b"rt->frontend through RM proxy").unwrap();
    let mut fe_session = rt_fe_listener.accept().unwrap();
    assert_eq!(
        &fe_session.recv().unwrap()[..],
        b"rt->frontend through RM proxy"
    );

    // RT operates on the AP (attach/continue) while the RM keeps
    // ownership of creation — the figure's separation of arrows.
    rt.attach(app).unwrap();
    rt.continue_process(app).unwrap();
    assert_eq!(rt.wait_terminal(app, T).unwrap(), ProcStatus::Exited(0));

    // The RM front-end host never needed to reach into the private
    // zone directly.
    let _ = rm_fe_host;
}

#[test]
fn fig1_stdio_forwarding_through_proxy() {
    // The same topology, exercising the second §2.4 case: "the standard
    // input/output of the application program needs to be connected to
    // the desktop machine of the user".
    let world = World::new();
    let user_host = world.add_host();
    let zone = world.add_private_zone(FirewallPolicy::STRICT);
    let remote = world.add_host_in(zone);

    let stdio_listener = world.net().listen(user_host, 5000).unwrap();
    let stdio_addr = Addr::new(user_host, 5000);
    world.net().authorize_route(remote, stdio_addr);
    let proxy = tdp::netsim::proxy::spawn(world.net(), remote, 9618).unwrap();

    world.os().fs().install_exec(
        remote,
        "/bin/chatty",
        ExecImage::from_fn(|_| {
            fn_program(|ctx| {
                ctx.write_stdout(b"output line\n");
                0
            })
        }),
    );
    let mut rm = TdpHandle::init(&world, remote, CTX, "rm", Role::ResourceManager).unwrap();
    rm.advertise_proxy(proxy.addr()).unwrap();
    let app = rm.create_process(TdpCreate::new("/bin/chatty")).unwrap();
    rm.wait_terminal(app, T).unwrap();

    // The RM forwards the captured stdio across the firewall via its
    // proxy to the user's desktop.
    let out = world.os().read_stdout(app).unwrap();
    let conn =
        tdp::netsim::proxy::connect_via(world.net(), remote, proxy.addr(), stdio_addr).unwrap();
    conn.send(&out).unwrap();
    let mut s = stdio_listener.accept().unwrap();
    assert_eq!(&s.recv().unwrap()[..], b"output line\n");
}
