//! The Standard universe: remote system calls through the shadow,
//! *during* execution (§4.1) — not mere before/after staging.

use std::sync::Arc;
use std::time::Duration;
use tdp::condor::syscall_lib::RemoteFs;
use tdp::condor::{CondorPool, JobState};
use tdp::core::World;
use tdp::proto::ProcStatus;
use tdp::simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(30);

/// An application "linked with condor_syscall_lib": it reads its
/// configuration from the submit machine, computes, and writes partial
/// results back remotely after every phase — all mid-run.
fn standard_app(world: World) -> ExecImage {
    ExecImage::new(
        ["main", "phase"],
        Arc::new(move |_| {
            let world = world.clone();
            fn_program(move |ctx| {
                let mut rfs = match RemoteFs::from_env(world.net(), ctx) {
                    Ok(r) => r,
                    Err(e) => {
                        ctx.write_stderr(format!("syscall_lib: {e}\n").as_bytes());
                        return 2;
                    }
                };
                // Remote read of the run configuration.
                let phases: u64 = rfs
                    .read("config")
                    .ok()
                    .and_then(|d| String::from_utf8(d).ok())
                    .and_then(|s| s.trim().parse().ok())
                    .unwrap_or(0);
                ctx.call("main", |ctx| {
                    for p in 0..phases {
                        ctx.call("phase", |ctx| ctx.compute(10));
                        // Remote write of a partial result after each phase.
                        rfs.write(
                            &format!("partial.{p}"),
                            format!("phase {p} done").as_bytes(),
                        )
                        .expect("remote write");
                    }
                });
                0
            })
        }),
    )
}

#[test]
fn standard_universe_remote_io_during_execution() {
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere("/bin/solver", standard_app(world.clone()));
    world
        .os()
        .fs()
        .write_file(pool.submit_host(), "config", b"3");

    let job = pool
        .submit_str("universe = Standard\nexecutable = /bin/solver\nqueue\n")
        .unwrap();
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    // The partial results appeared on the submit machine, written by
    // the shadow while the job ran on the execution machine.
    for p in 0..3 {
        assert_eq!(
            world
                .os()
                .fs()
                .read_file(pool.submit_host(), &format!("partial.{p}"))
                .unwrap(),
            format!("phase {p} done").as_bytes(),
        );
    }
    // Nothing of the sort ever existed on the execution host.
    assert!(world
        .os()
        .fs()
        .list(pool.exec_hosts()[0], "partial")
        .is_empty());
}

#[test]
fn vanilla_job_has_no_shadow_env() {
    // The same binary in the Vanilla universe: condor_syscall_lib
    // refuses to link (no CONDOR_SHADOW), and the job exits 2.
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere("/bin/solver", standard_app(world.clone()));
    let job = pool
        .submit_str("universe = Vanilla\nexecutable = /bin/solver\nqueue\n")
        .unwrap();
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(2)),
        other => panic!("{other:?}"),
    }
}

#[test]
fn standard_universe_with_tool_daemon() {
    // Remote syscalls and TDP monitoring compose: the tool profiles a
    // Standard-universe job while the job does remote I/O.
    use tdp::tools::tracey_image;
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere("/bin/solver", standard_app(world.clone()));
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "tracey", tracey_image(world.clone()));
    }
    world
        .os()
        .fs()
        .write_file(pool.submit_host(), "config", b"4");
    let job = pool
        .submit_str(
            "universe = Standard\nexecutable = /bin/solver\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"tracey\"\nqueue\n",
        )
        .unwrap();
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    // Remote writes happened…
    assert!(world.os().fs().exists(pool.submit_host(), "partial.3"));
    // …and the tool counted every phase.
    let reports: Vec<String> = world
        .os()
        .fs()
        .list(pool.exec_hosts()[0], "tracey")
        .into_iter()
        .filter(|f| f.ends_with(".coverage"))
        .collect();
    let text = String::from_utf8(
        world
            .os()
            .fs()
            .read_file(pool.exec_hosts()[0], &reports[0])
            .unwrap(),
    )
    .unwrap();
    assert!(text.contains("phase 4"), "{text}");
}
