//! **E18 — chaos soak**: jobs across condor + lsf + grid while a fault
//! injector kills hosts, partitions the network, and crashes attribute
//! space servers on a seeded schedule, with the `tdp-ops` supervisor
//! healing what it can. The invariants:
//!
//! * **zero lost jobs** — every submitted job reaches a successful
//!   terminal state despite the faults;
//! * **bounded recovery** — supervised components come back within a
//!   measured, bounded latency, and nothing is escalated;
//! * **clean final state** — empty queues, live machines back in the
//!   matchmaker, all fault classes actually exercised.
//!
//! `chaos_smoke` is the deterministic ~seconds version that runs in the
//! tier-1 suite; `chaos_soak_full` is the multi-minute version the
//! nightly workflow runs with `--ignored`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use tdp::condor::{CondorPool, JobState};
use tdp::core::{LassComponent, Supervisable, World};
use tdp::grid::{Gatekeeper, GramClient, GramState};
use tdp::lsf::{LsfCluster, LsfJobState, LsfRequest};
use tdp::netsim::{FaultEvent, FaultSchedule, FirewallPolicy, ZoneId};
use tdp::ops::{Health, Supervisor, SupervisorConfig};
use tdp::proto::{ContextId, HostId};
use tdp::simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(120);

fn app_image() -> ExecImage {
    ExecImage::new(
        ["main"],
        Arc::new(|_| {
            fn_program(|ctx| {
                ctx.call("main", |ctx| ctx.compute(5));
                0
            })
        }),
    )
}

/// Probe for a startd by address rather than handle: the original
/// handle dies with its host; what the supervisor cares about is that
/// *some* startd serves the machine's well-known port again.
struct StartdProbe {
    world: World,
    host: HostId,
    name: String,
}

impl Supervisable for StartdProbe {
    fn ops_name(&self) -> String {
        self.name.clone()
    }
    fn ops_probe(&self) -> tdp::proto::TdpResult<()> {
        let addr = tdp::proto::Addr::new(self.host, tdp::condor::startd::STARTD_PORT);
        self.world.net().connect(self.host, addr).map(drop)
    }
}

/// Scale knobs: the smoke and the full soak are the same harness.
struct SoakConfig {
    condor_jobs: usize,
    lsf_jobs: usize,
    grid_jobs: usize,
    attr_puts: usize,
    /// Fault waves (each wave = host kill + LASS crash + CASS crash +
    /// partition, interleaved with repairs).
    waves: u32,
    /// Gap between consecutive fault events.
    step: Duration,
}

struct SoakOutcome {
    fired: Vec<String>,
    recovery_max: Duration,
}

/// The full topology: a condor pool (one exec host in a partitionable
/// private zone), an LSF cluster, a grid gatekeeper fronting the pool,
/// and the ops supervisor watching a LASS and the CASS.
fn soak(cfg: SoakConfig) -> SoakOutcome {
    let w = World::new();

    // --- Condor: 3 exec hosts; the third sits behind a zone boundary
    // so a partition can cut it off mid-soak.
    let cut_zone = w.net().add_private_zone(FirewallPolicy::OPEN);
    let cm = w.add_host();
    let submit = w.add_host();
    let exec: Vec<HostId> = vec![w.add_host(), w.add_host(), w.net().add_host_in(cut_zone)];
    let pool = Arc::new(CondorPool::assemble(&w, cm, submit, exec.clone()).unwrap());
    pool.install_everywhere("/bin/app", app_image());
    // Partitions and dead hosts make individual claims fail; give the
    // schedd room to keep renegotiating until the fabric heals.
    pool.schedd()
        .set_negotiation_timeout(Duration::from_secs(30));

    // --- LSF: a master and two execution hosts.
    let lsf_master = w.add_host();
    let lsf_exec = [w.add_host(), w.add_host()];
    let cluster = LsfCluster::start(&w, lsf_master).unwrap();
    for h in lsf_exec {
        w.os().fs().install_exec(h, "/bin/app", app_image());
        cluster.add_host(h, 2).unwrap();
    }

    // --- Grid: a gatekeeper on its own head node, backed by the pool.
    let head = w.add_host();
    let gk = Gatekeeper::start(&w, head, pool.clone()).unwrap();
    gk.authorize("/O=Grid/CN=soak", "proxy-soak");
    let user = w.add_host();

    // --- Ops: supervisor on the condor central manager; it watches a
    // LASS on a dedicated host no scheduler runs jobs on (a starter's
    // own `ensure_lass` would otherwise heal it first), plus the CASS.
    let lass_host = w.add_host();
    w.ensure_lass(lass_host).unwrap();
    let sup = Supervisor::start(
        &w,
        cm,
        SupervisorConfig {
            // Transient outages are the whole point of the soak: a
            // generous budget so only a genuinely stuck component
            // would escalate.
            restart_budget: 100,
            ..SupervisorConfig::default()
        },
    )
    .unwrap();
    let lass_comp = LassComponent::new(&w, lass_host);
    let lass_name = lass_comp.ops_name();
    sup.register(Arc::new(LassComponent::new(&w, lass_host)), move || {
        lass_comp.respawn().map(|_| ())
    });
    let cass_comp = tdp::core::CassComponent::new(&w, cm);
    sup.register(Arc::new(tdp::core::CassComponent::new(&w, cm)), move || {
        cass_comp.respawn().map(|_| ())
    });
    // The startd on the to-be-killed host: its machine ad goes stale in
    // the matchmaker when the host dies; a supervised restart after the
    // revive re-registers it (same name, same well-known port), putting
    // the machine back into service.
    let killed_exec = exec[1];
    let startd_name = pool.startds()[1].ops_name();
    {
        let w2 = w.clone();
        let mm = pool.matchmaker().addr();
        let replacement: Arc<tdp_sync::Mutex<Option<tdp::condor::startd::Startd>>> =
            Arc::new(tdp_sync::Mutex::new(None));
        sup.register(
            Arc::new(StartdProbe {
                world: w.clone(),
                host: killed_exec,
                name: startd_name.clone(),
            }),
            move || {
                let ad = tdp::condor::classad::ClassAd::new()
                    .with_int("Memory", 1024)
                    .with_int("Cpus", 1)
                    .with_int("MachineId", 1)
                    .with_bool("HasTdp", true)
                    .with_str("Arch", "X86_64");
                let s = tdp::condor::startd::Startd::start(&w2, killed_exec, ad, mm)?;
                *replacement.lock() = Some(s);
                Ok(())
            },
        );
    }
    {
        let s = pool.schedd().clone();
        sup.register_gauge("condor.queue_depth", move || s.queue_depth() as u64);
    }
    {
        let c = cluster.clone();
        sup.register_gauge("lsf.queue_depth", move || c.queue_depth() as u64);
    }

    // --- The fault schedule: every class, in waves. Within a wave:
    // kill the second (public) condor exec host, crash the supervised
    // LASS, crash the CASS, cut the private zone off, then repair in
    // the same order. The second LSF host dies for good in wave one
    // (its in-flight tasks must be requeued, not lost).
    let step = cfg.step;
    let mut sched = FaultSchedule::new();
    let mut t = step;
    for wave in 0..cfg.waves {
        sched.push(t, FaultEvent::KillHost(exec[1]));
        if wave == 0 {
            sched.push(t, FaultEvent::KillHost(lsf_exec[1]));
        }
        sched.push(
            t + step,
            FaultEvent::Custom(format!("kill-lass:{}", lass_host.0)),
        );
        sched.push(t + 2 * step, FaultEvent::Custom("kill-cass".into()));
        sched.push(
            t + 3 * step,
            FaultEvent::Partition(ZoneId::PUBLIC, cut_zone),
        );
        sched.push(t + 5 * step, FaultEvent::Heal(ZoneId::PUBLIC, cut_zone));
        sched.push(t + 6 * step, FaultEvent::ReviveHost(exec[1]));
        t += 8 * step;
    }
    let injector = w.inject_faults(sched);

    // --- Drivers, one thread per scheduler. Jobs are submitted over
    // the soak window and every one must succeed.
    let condor_ok = Arc::new(AtomicUsize::new(0));
    let condor_thread = {
        let pool = pool.clone();
        let ok = condor_ok.clone();
        let n = cfg.condor_jobs;
        let pace = cfg.step / 4;
        thread::spawn(move || {
            // Paced submissions, so the queue stays loaded across the
            // whole fault window instead of draining before it opens.
            let jobs: Vec<_> = (0..n)
                .map(|_| {
                    thread::sleep(pace);
                    pool.submit_str("executable = /bin/app\nqueue\n").unwrap()
                })
                .collect();
            for j in jobs {
                match pool.wait_job(j, T).unwrap() {
                    JobState::Completed(_) => {
                        ok.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!("condor job {j} lost: {other:?}"),
                }
            }
        })
    };
    let lsf_ok = Arc::new(AtomicUsize::new(0));
    let lsf_thread = {
        let cluster = cluster.clone();
        let ok = lsf_ok.clone();
        let n = cfg.lsf_jobs;
        let pace = cfg.step / 2;
        thread::spawn(move || {
            let jobs: Vec<_> = (0..n)
                .map(|_| {
                    thread::sleep(pace);
                    cluster.bsub(LsfRequest::new("/bin/app").ntasks(2)).unwrap()
                })
                .collect();
            for j in jobs {
                match cluster.wait_job(j, T).unwrap() {
                    LsfJobState::Done(_) => {
                        ok.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!("lsf job {j} lost: {other:?}"),
                }
            }
        })
    };
    let grid_ok = Arc::new(AtomicUsize::new(0));
    let grid_thread = {
        let w = w.clone();
        let addr = gk.addr();
        let ok = grid_ok.clone();
        let n = cfg.grid_jobs;
        let pace = cfg.step;
        thread::spawn(move || {
            for _ in 0..n {
                thread::sleep(pace);
                let mut client = GramClient::submit(
                    &w,
                    user,
                    addr,
                    "/O=Grid/CN=soak",
                    "proxy-soak",
                    "&(executable=/bin/app)",
                )
                .unwrap();
                match client.wait(T).unwrap() {
                    GramState::Done(_) => {
                        ok.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!("grid job lost: {other:?}"),
                }
            }
        })
    };
    // A raw attribute-space workload against the supervised LASS: the
    // reconnecting client must ride through the injected LASS crashes
    // without losing a single operation.
    let attr_thread = {
        let w = w.clone();
        let lass = w.lass_addr(lass_host).unwrap();
        let n = cfg.attr_puts;
        let pace = cfg.step / 10;
        thread::spawn(move || {
            let mut c = w
                .attr_connect_reliable(lass_host, lass, Default::default())
                .unwrap();
            let ctx = ContextId(42);
            c.join(ctx).unwrap();
            for i in 0..n {
                c.put(ctx, "soak.seq", &i.to_string()).unwrap();
                thread::sleep(pace);
            }
            assert_eq!(c.get(ctx, "soak.seq").unwrap(), (n - 1).to_string());
        })
    };

    let t0 = std::time::Instant::now();
    condor_thread.join().unwrap();
    eprintln!("condor drained at {:?}", t0.elapsed());
    lsf_thread.join().unwrap();
    eprintln!("lsf drained at {:?}", t0.elapsed());
    grid_thread.join().unwrap();
    eprintln!("grid drained at {:?}", t0.elapsed());
    attr_thread.join().unwrap();
    eprintln!("attr drained at {:?}", t0.elapsed());
    let log = injector.join();

    // Zero lost jobs, across every driver.
    assert_eq!(condor_ok.load(Ordering::SeqCst), cfg.condor_jobs);
    assert_eq!(lsf_ok.load(Ordering::SeqCst), cfg.lsf_jobs);
    assert_eq!(grid_ok.load(Ordering::SeqCst), cfg.grid_jobs);

    // Every fault class actually fired.
    let fired: Vec<String> = log.iter().map(|(_, e)| e.clone()).collect();
    for class in [
        "kill-host",
        "custom kill-lass",
        "custom kill-cass",
        "partition",
    ] {
        assert!(
            fired.iter().any(|e| e.starts_with(class)),
            "fault class {class} never fired: {fired:?}"
        );
    }

    // Supervised components recovered (never escalated), within bound.
    // The killed exec host's startd must be back in service (its host
    // was revived; the supervisor re-registered the machine).
    sup.wait_health(&startd_name, Health::Healthy, T).unwrap();
    assert_eq!(sup.escalated(), Vec::<String>::new());
    assert!(
        sup.restarts_of(&lass_name).unwrap() >= 1,
        "LASS was never restarted"
    );
    assert!(
        sup.restarts_of("cass").unwrap() >= 1,
        "CASS was never restarted"
    );
    assert!(
        sup.restarts_of(&startd_name).unwrap() >= 1,
        "startd was never restarted"
    );
    let recovery_max = sup
        .recovery_latencies()
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .max()
        .expect("no recovery latency recorded");
    assert!(
        recovery_max < Duration::from_secs(10),
        "recovery latency unbounded: {recovery_max:?} ({:?})",
        sup.recovery_latencies()
    );

    // Clean final state: queues drained, KPI plane consistent.
    assert_eq!(pool.schedd().queue_depth(), 0);
    assert_eq!(cluster.queue_depth(), 0);
    let kpis = sup.kpi_snapshot_now();
    let kpi = |k: &str| {
        kpis.iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("missing KPI {k}"))
    };
    assert_eq!(kpi("escalations"), "0");
    assert_eq!(kpi("condor.queue_depth"), "0");
    assert_eq!(kpi("lsf.queue_depth"), "0");
    assert!(kpi("restarts").parse::<u64>().unwrap() >= 2);

    sup.shutdown();
    SoakOutcome {
        fired,
        recovery_max,
    }
}

/// Tier-1: deterministic, a handful of seconds.
#[test]
fn chaos_smoke() {
    let out = soak(SoakConfig {
        condor_jobs: 25,
        lsf_jobs: 15,
        grid_jobs: 5,
        attr_puts: 40,
        waves: 1,
        step: Duration::from_millis(300),
    });
    assert!(out.fired.len() >= 7, "{:?}", out.fired);
}

/// Nightly: hundreds of jobs, repeated fault waves, minutes of wall
/// clock. Run with `cargo test --release -- --ignored chaos_soak_full`.
#[test]
#[ignore = "multi-minute soak; nightly workflow runs it with --ignored"]
fn chaos_soak_full() {
    let out = soak(SoakConfig {
        condor_jobs: 150,
        lsf_jobs: 100,
        grid_jobs: 25,
        attr_puts: 400,
        waves: 8,
        step: Duration::from_millis(500),
    });
    // 6 events per wave plus the one-off LSF host kill.
    assert!(out.fired.len() >= 49, "{:?}", out.fired);
    println!(
        "full soak: {} fault events, recovery max {:?}",
        out.fired.len(),
        out.recovery_max
    );
}
