//! **E6 — Figure 5**: "Paradyn Running with Condor using TDP" — the
//! submit file with the new `+SuspendJobAtExec` / `+ToolDaemon*` entries
//! (5B) driving the daemon structure of 5A.

use std::sync::Arc;
use std::time::Duration;
use tdp::condor::{CondorPool, JobState, SubmitDescription, Universe};
use tdp::core::World;
use tdp::paradyn::{paradynd_image, ParadynFrontend};
use tdp::proto::ProcStatus;
use tdp::simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(30);

/// Figure 5B verbatim, with the 2003 hostname/ports replaced by
/// placeholders filled per-test (our hosts are numeric).
fn figure_5b(fe_host: u32, p: u16, pp: u16) -> String {
    format!(
        r#"universe = Vanilla
executable = foo
input = infile
output = outfile
arguments = 1 2 3
transfer_files = always
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-zunix -l3 -m{fe_host} -p{p} -P{pp} -a%pid"
+ToolDaemonOutput = "daemon.out"
+ToolDaemonError = "daemon.err"
tranfer_input_files = paradynd
queue
"#
    )
}

#[test]
fn fig5b_parses_to_the_expected_description() {
    let d = SubmitDescription::parse(&figure_5b(0, 2090, 2091)).unwrap();
    assert_eq!(d.universe, Universe::Vanilla);
    assert_eq!(d.executable, "foo");
    assert_eq!(d.arguments, vec!["1", "2", "3"]);
    assert!(
        d.suspend_job_at_exec,
        "+SuspendJobAtExec directive (line 7 of the figure)"
    );
    let tool = d.tool_daemon.as_ref().unwrap();
    assert_eq!(tool.cmd, "paradynd");
    assert!(
        tool.args.contains(&"-a%pid".to_string()),
        "the %pid marker stays literal"
    );
    assert_eq!(tool.output.as_deref(), Some("daemon.out"));
    assert_eq!(tool.error.as_deref(), Some("daemon.err"));
    assert_eq!(
        d.transfer_input_files,
        vec!["paradynd"],
        "the daemon binary is shipped too"
    );
}

#[test]
fn fig5a_daemon_structure_from_the_submit_file() {
    // Running the Figure 5B file produces the 5A structure: from
    // Condor's point of view the job is *two* entities — the
    // application process (created paused) and paradynd.
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    let exec_host = pool.exec_hosts()[0];

    // Everything staged from the submit machine, per the figure:
    // executable `foo` (transfer_files = always) and the paradynd
    // binary (tranfer_input_files = paradynd).
    world.os().fs().install_exec(
        pool.submit_host(),
        "foo",
        ExecImage::new(
            ["main", "work"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    let _ = ctx.read_stdin();
                    ctx.call("main", |ctx| {
                        for _ in 0..6 {
                            ctx.call("work", |ctx| ctx.compute(10));
                        }
                    });
                    ctx.write_stdout(b"done");
                    0
                })
            }),
        ),
    );
    world.os().fs().install_exec(
        pool.submit_host(),
        "paradynd",
        paradynd_image(world.clone()),
    );
    world
        .os()
        .fs()
        .write_file(pool.submit_host(), "infile", b"in");

    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();
    let job = pool
        .submit_str(&figure_5b(
            fe.host().0,
            fe.control_addr().port.0,
            fe.data_addr().port.0,
        ))
        .unwrap();

    // The 5A structure materializes on the execution host: the paused
    // application and the tool daemon.
    let daemons = fe.wait_for_daemons(1, T).unwrap();
    let app_pid = daemons[0].pid;
    assert_eq!(world.os().status(app_pid).unwrap(), ProcStatus::Created);
    let (host, exe, _, _) = world.os().proc_info(app_pid).unwrap();
    assert_eq!(host, exec_host);
    assert_eq!(exe, "foo");
    // Both binaries were staged onto the execution host.
    assert!(world.os().fs().exists(exec_host, "foo"));
    assert!(world.os().fs().exists(exec_host, "paradynd"));

    fe.run_all().unwrap();
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    // Figure 5's ToolDaemonOutput / ToolDaemonError files landed on the
    // submit machine, along with the job output.
    assert_eq!(
        world
            .os()
            .fs()
            .read_file(pool.submit_host(), "outfile")
            .unwrap(),
        b"done"
    );
    assert!(world.os().fs().exists(pool.submit_host(), "daemon.out"));
    assert!(world.os().fs().exists(pool.submit_host(), "daemon.err"));
}

#[test]
fn fig5_without_suspend_runs_unmonitored() {
    // Dropping the +SuspendJobAtExec/+ToolDaemon lines yields a plain
    // vanilla job: no pause, no daemon, same pipeline.
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    world.os().fs().install_exec(
        pool.submit_host(),
        "foo",
        ExecImage::from_fn(|_| {
            fn_program(|ctx| {
                let _ = ctx.read_stdin();
                ctx.write_stdout(b"plain");
                0
            })
        }),
    );
    world
        .os()
        .fs()
        .write_file(pool.submit_host(), "infile", b"");
    let job = pool
        .submit_str(
            "executable = foo\ninput = infile\noutput = outfile\ntransfer_files = always\nqueue\n",
        )
        .unwrap();
    assert!(matches!(
        pool.wait_job(job, T).unwrap(),
        JobState::Completed(_)
    ));
    assert_eq!(
        world
            .os()
            .fs()
            .read_file(pool.submit_host(), "outfile")
            .unwrap(),
        b"plain"
    );
}
