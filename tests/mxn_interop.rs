//! **E10 — §1's m × n claim**: "each run-time tool must be individually
//! ported to run under a particular job management system; for m tools
//! and n environments, the problem becomes an m × n effort, rather than
//! the hoped-for m + n effort."
//!
//! The demonstration: two *different* tools and two *different* resource
//! managers, all speaking only TDP. Every (tool, RM) pair works with
//! **zero pairwise code** — the tool images are byte-identical across
//! RMs, and neither RM names any tool.

use std::sync::Arc;
use std::time::Duration;
use tdp::condor::{CondorPool, JobState};
use tdp::core::{Role, TdpCreate, TdpHandle, World};
use tdp::paradyn::{paradynd_image, ParadynFrontend};
use tdp::proto::{names, ContextId, HostId, Pid, ProcStatus};
use tdp::simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(30);

fn app_image() -> ExecImage {
    ExecImage::new(
        ["main", "work"],
        Arc::new(|_| {
            fn_program(|ctx| {
                ctx.call("main", |ctx| {
                    for _ in 0..8 {
                        ctx.call("work", |ctx| ctx.compute(10));
                    }
                });
                0
            })
        }),
    )
}

/// Tool #2: "tracey", a minimal coverage tool — counts calls of every
/// symbol and writes a coverage report file. Implemented purely against
/// the TDP API: it knows nothing about any scheduler.
fn tracey_image(world: World) -> ExecImage {
    ExecImage::from_fn(move |args| {
        let world = world.clone();
        let ctx_id = args
            .iter()
            .find_map(|a| a.strip_prefix("-c").and_then(|v| v.parse().ok()))
            .map(ContextId)
            .unwrap_or(ContextId::DEFAULT);
        fn_program(move |pctx| {
            let name = format!("tracey{}", pctx.pid());
            let mut tdp = TdpHandle::init(&world, pctx.host(), ctx_id, &name, Role::Tool)
                .expect("tracey init");
            let pid = Pid::parse(&tdp.get(names::PID).expect("pid")).expect("pid parse");
            tdp.attach(pid).expect("attach");
            for sym in tdp.symbols(pid).expect("symbols") {
                tdp.arm_probe(pid, &sym).expect("arm");
            }
            tdp.put(names::TOOL_READY, "1").expect("ready");
            tdp.continue_process(pid).expect("continue");
            tdp.wait_terminal(pid, T).expect("app done");
            let snap = tdp.read_probes(pid).expect("probes");
            let mut lines: Vec<String> = snap
                .counts
                .iter()
                .map(|(s, c)| format!("{s} {c}"))
                .collect();
            lines.sort();
            world.os().fs().write_file(
                pctx.host(),
                &format!("{name}.coverage"),
                lines.join("\n").as_bytes(),
            );
            tdp.exit().expect("exit");
            0
        })
    })
}

/// RM #2: "minirm", a bare-bones local resource manager — no queue, no
/// matchmaking, just the TDP create-paused / launch-tool / put-pid
/// protocol. It names no tool: the tool executable is its *input*.
fn minirm_run_with_tool(
    world: &World,
    host: HostId,
    ctx: ContextId,
    tool_exe: &str,
    tool_args: Vec<String>,
) -> (Pid, Pid) {
    let mut rm = TdpHandle::init(world, host, ctx, "minirm", Role::ResourceManager).unwrap();
    let app = rm
        .create_process(TdpCreate::new("/bin/app").paused())
        .unwrap();
    let tool = rm
        .create_process(TdpCreate::new(tool_exe.to_string()).args(tool_args))
        .unwrap();
    rm.put(names::PID, &app.to_string()).unwrap();
    // minirm waits for the tool's ready handshake, then leaves the tool
    // in control (it continues the app itself).
    rm.get(names::TOOL_READY).unwrap();
    (app, tool)
}

#[test]
fn matrix_minirm_runs_tracey() {
    let world = World::new();
    let host = world.add_host();
    world.os().fs().install_exec(host, "/bin/app", app_image());
    world
        .os()
        .fs()
        .install_exec(host, "tracey", tracey_image(world.clone()));
    let ctx = ContextId(7);
    let (app, tool) = minirm_run_with_tool(&world, host, ctx, "tracey", vec!["-c7".into()]);
    assert_eq!(
        world.os().wait_terminal(app, T).unwrap(),
        ProcStatus::Exited(0)
    );
    assert_eq!(
        world.os().wait_terminal(tool, T).unwrap(),
        ProcStatus::Exited(0)
    );
    let cov: Vec<String> = world
        .os()
        .fs()
        .list(host, "tracey")
        .into_iter()
        .filter(|f| f.ends_with(".coverage"))
        .collect();
    assert_eq!(cov.len(), 1);
    let report = String::from_utf8(world.os().fs().read_file(host, &cov[0]).unwrap()).unwrap();
    assert!(report.contains("work 8"), "{report}");
}

#[test]
fn matrix_minirm_runs_paradynd() {
    let world = World::new();
    let host = world.add_host();
    let fe_host = world.add_host();
    world.os().fs().install_exec(host, "/bin/app", app_image());
    world
        .os()
        .fs()
        .install_exec(host, "paradynd", paradynd_image(world.clone()));
    let fe = ParadynFrontend::start(world.net(), fe_host, 2090, 2091).unwrap();
    let ctx = ContextId(9);
    let args = vec![
        format!("-m{}", fe_host.0),
        format!("-p{}", fe.control_addr().port.0),
        format!("-P{}", fe.data_addr().port.0),
        "-a%pid".to_string(),
        "-c9".to_string(),
    ];
    let (app, tool) = minirm_run_with_tool(&world, host, ctx, "paradynd", args);
    fe.wait_for_daemons(1, T).unwrap();
    fe.run_all().unwrap();
    assert_eq!(
        world.os().wait_terminal(app, T).unwrap(),
        ProcStatus::Exited(0)
    );
    assert_eq!(
        world.os().wait_terminal(tool, T).unwrap(),
        ProcStatus::Exited(0)
    );
    assert!(fe
        .samples()
        .iter()
        .any(|s| s.symbol == "work" && s.count == 8));
}

#[test]
fn matrix_condor_runs_paradynd() {
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere("/bin/app", app_image());
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();
    let submit = format!(
        "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"paradynd\"\n+ToolDaemonArgs = \"-m{} -p{} -P{} -a%pid\"\nqueue\n",
        fe.host().0, fe.control_addr().port.0, fe.data_addr().port.0
    );
    let job = pool.submit_str(&submit).unwrap();
    fe.wait_for_daemons(1, T).unwrap();
    fe.run_all().unwrap();
    assert!(matches!(
        pool.wait_job(job, T).unwrap(),
        JobState::Completed(_)
    ));
}

#[test]
fn matrix_condor_runs_tracey() {
    // The exact same Condor pool code and the exact same tracey image:
    // only the submit file's ToolDaemonCmd changes. tracey auto-runs
    // the app (it has no front-end issuing run commands).
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere("/bin/app", app_image());
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "tracey", tracey_image(world.clone()));
    }
    let job = pool
        .submit_str(
            "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"tracey\"\nqueue\n",
        )
        .unwrap();
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    // The coverage report exists on the execution host.
    let cov: Vec<String> = world
        .os()
        .fs()
        .list(pool.exec_hosts()[0], "tracey")
        .into_iter()
        .filter(|f| f.ends_with(".coverage"))
        .collect();
    assert_eq!(cov.len(), 1, "{cov:?}");
}

#[test]
fn full_matrix_two_schedulers_two_tool_images() {
    // The m + n payoff, mechanically: iterate over {condor, lsf} ×
    // {tracey, vamp}. The tool images come from one constructor each;
    // the scheduler code paths never branch on which tool runs.
    use tdp::lsf::{LsfCluster, LsfJobState, LsfRequest};
    use tdp::tools::{tracey_image, vamp_image};

    type ToolCtor = fn(World) -> tdp::simos::ExecImage;
    let tools: Vec<(&str, ToolCtor, &str)> = vec![
        ("tracey", tracey_image as ToolCtor, ".coverage"),
        ("vamp", vamp_image as ToolCtor, ".vamp"),
    ];

    for (tool_name, ctor, artifact_suffix) in &tools {
        // --- Scheduler 1: Condor ---
        {
            let world = World::new();
            let pool = CondorPool::build(&world, 1).unwrap();
            pool.install_everywhere("/bin/app", app_image());
            for h in pool.exec_hosts() {
                world
                    .os()
                    .fs()
                    .install_exec(*h, tool_name, ctor(world.clone()));
            }
            let submit = format!(
                "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"{tool_name}\"\n+ToolDaemonArgs = \"-i2\"\nqueue\n"
            );
            let job = pool.submit_str(&submit).unwrap();
            match pool.wait_job(job, T).unwrap() {
                JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
                other => panic!("condor × {tool_name}: {other:?}"),
            }
            let artifacts: Vec<String> = world
                .os()
                .fs()
                .list(pool.exec_hosts()[0], tool_name)
                .into_iter()
                .filter(|f| f.ends_with(artifact_suffix))
                .collect();
            assert_eq!(artifacts.len(), 1, "condor × {tool_name}: {artifacts:?}");
        }
        // --- Scheduler 2: LSF ---
        {
            let world = World::new();
            let master = world.add_host();
            let exec = world.add_host();
            world.os().fs().install_exec(exec, "/bin/app", app_image());
            world
                .os()
                .fs()
                .install_exec(exec, tool_name, ctor(world.clone()));
            let cluster = LsfCluster::start(&world, master).unwrap();
            let _sbd = cluster.add_host(exec, 1).unwrap();
            let job = cluster
                .bsub(
                    LsfRequest::new("/bin/app")
                        .suspended()
                        .tool(*tool_name, vec!["-i2".into()]),
                )
                .unwrap();
            match cluster.wait_job(job, T).unwrap() {
                LsfJobState::Done(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
                other => panic!("lsf × {tool_name}: {other:?}"),
            }
            // LSF stages tool artifacts back to the master inline.
            let artifacts: Vec<String> = world
                .os()
                .fs()
                .list(master, tool_name)
                .into_iter()
                .filter(|f| f.ends_with(artifact_suffix))
                .collect();
            assert_eq!(artifacts.len(), 1, "lsf × {tool_name}: {artifacts:?}");
        }
    }
}

#[test]
fn legacy_point_solution_tool_conflicts_with_the_rm() {
    // The problem statement of §2, demonstrated: a pre-TDP tool that
    // insists on creating the application itself ("while most
    // sophisticated run-time tools have the ability to attach … this
    // does not handle the case where the tool wants to attach before it
    // starts execution") conflicts with an RM that also creates the
    // process. The result: *two* application processes — the RM's copy
    // runs unmonitored, the tool monitors its private copy, and the
    // RM's accounting is silently wrong. TDP's division of labour
    // (create-paused by the RM, attach by the tool) is exactly the fix.
    use tdp::core::{Role, TdpCreate, TdpHandle};
    use tdp::proto::ContextId;

    let world = World::new();
    let host = world.add_host();
    world.os().fs().install_exec(host, "/bin/app", app_image());

    // The legacy tool: forks the application itself, pre-TDP style.
    world.os().fs().install_exec(
        host,
        "legacy_tool",
        tdp::simos::ExecImage::from_fn({
            let world = world.clone();
            move |_| {
                let world = world.clone();
                tdp::simos::fn_program(move |pctx| {
                    let mut tdp =
                        TdpHandle::init(&world, pctx.host(), ContextId(42), "legacy", Role::Tool)
                            .unwrap();
                    // Creates ITS OWN application process instead of
                    // attaching to the RM's.
                    let own = tdp
                        .create_process(TdpCreate::new("/bin/app").paused())
                        .unwrap();
                    tdp.attach(own).unwrap();
                    tdp.arm_probe(own, "work").unwrap();
                    tdp.continue_process(own).unwrap();
                    tdp.wait_terminal(own, T).unwrap();
                    0
                })
            }
        }),
    );

    // The RM also creates the application (it has to: that's its job).
    let mut rm = TdpHandle::init(&world, host, ContextId(42), "rm", Role::ResourceManager).unwrap();
    let rm_app = rm.create_process(TdpCreate::new("/bin/app")).unwrap();
    let tool = rm.create_process(TdpCreate::new("legacy_tool")).unwrap();
    assert_eq!(
        world.os().wait_terminal(rm_app, T).unwrap(),
        ProcStatus::Exited(0)
    );
    assert_eq!(
        world.os().wait_terminal(tool, T).unwrap(),
        ProcStatus::Exited(0)
    );

    // The conflict, observed: two copies of the application ran, and
    // the one the RM submitted was never attached by any tool — it ran
    // unmonitored while the tool profiled its private copy.
    let trace = world.trace();
    let creates = trace
        .events()
        .iter()
        .filter(|e| e.call.contains("tdp_create_process(/bin/app"))
        .count();
    assert_eq!(
        creates, 2,
        "the application was created twice — the §2 conflict"
    );
    assert!(
        trace
            .seq_of(None, &format!("tdp_attach({rm_app})"))
            .is_none(),
        "nobody ever attached to the RM's application — it ran unmonitored:\n{}",
        trace.render()
    );
    let attaches = trace
        .events()
        .iter()
        .filter(|e| e.call.starts_with("tdp_attach"))
        .count();
    assert_eq!(
        attaches, 1,
        "the tool attached only to its own private copy"
    );
}
