//! The "complete TDP framework" of §4.3: "In a complete TDP framework,
//! port arguments should be published by Paradyn front-end and
//! disseminated to remote sites as attribute values." — the paper's
//! prototype hard-coded `-p2090 -P2091` in the submit file; here the
//! front-end publishes its ports into the CASS and the submit file
//! carries **no address arguments at all**.

use std::sync::Arc;
use std::time::Duration;
use tdp::condor::{CondorPool, JobState};
use tdp::core::World;
use tdp::lsf::{LsfCluster, LsfJobState, LsfRequest};
use tdp::paradyn::{paradynd_image, ParadynFrontend, PerformanceConsultant};
use tdp::proto::ProcStatus;
use tdp::simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(30);

fn app_image() -> ExecImage {
    ExecImage::new(
        ["main", "kernel"],
        Arc::new(|_| {
            fn_program(|ctx| {
                let _ = ctx.read_stdin();
                ctx.call("main", |ctx| {
                    for _ in 0..12 {
                        ctx.call("kernel", |ctx| ctx.compute(10));
                    }
                });
                0
            })
        }),
    )
}

#[test]
fn condor_without_port_arguments() {
    let world = World::new();
    let pool = CondorPool::build(&world, 2).unwrap();
    pool.install_everywhere("/bin/app", app_image());
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    // The front-end publishes its ports into the global space instead
    // of the submit file.
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 0, 0).unwrap();
    fe.advertise_via_cass(&world).unwrap();

    // NOTE: no -m / -p / -P anywhere.
    let job = pool
        .submit_str(
            "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"paradynd\"\n+ToolDaemonArgs = \"-zunix -a%pid\"\nqueue\n",
        )
        .unwrap();
    let daemons = fe.wait_for_daemons(1, T).unwrap();
    assert_eq!(daemons.len(), 1);
    fe.run_all().unwrap();
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    fe.wait_done(1, T).unwrap();
    let b = PerformanceConsultant::default()
        .search(&fe.samples())
        .unwrap();
    assert_eq!(b.symbol, "kernel");
}

#[test]
fn lsf_without_port_arguments() {
    // The same complete-framework dissemination under the *other*
    // scheduler: nothing tool- or address-specific in the request.
    let world = World::new();
    let master = world.add_host();
    let exec = world.add_host();
    world.os().fs().install_exec(exec, "/bin/app", app_image());
    world
        .os()
        .fs()
        .install_exec(exec, "paradynd", paradynd_image(world.clone()));
    let cluster = LsfCluster::start(&world, master).unwrap();
    let _sbd = cluster.add_host(exec, 1).unwrap();

    let fe = ParadynFrontend::start(world.net(), master, 0, 0).unwrap();
    fe.advertise_via_cass(&world).unwrap();

    let job = cluster
        .bsub(
            LsfRequest::new("/bin/app")
                .suspended()
                .tool("paradynd", vec!["-a%pid".into(), "-A".into()]),
        )
        .unwrap();
    assert!(matches!(
        cluster.wait_job(job, T).unwrap(),
        LsfJobState::Done(_)
    ));
    fe.wait_done(1, T).unwrap();
    assert!(fe
        .samples()
        .iter()
        .any(|s| s.symbol == "kernel" && s.count == 12));
}

#[test]
fn daemon_fails_cleanly_without_any_dissemination() {
    // No argv ports, no local attrs, no CASS: the daemon must error
    // out (and say why), not hang.
    let world = World::new();
    let host = world.add_host();
    world.os().fs().install_exec(host, "/bin/app", app_image());
    world
        .os()
        .fs()
        .install_exec(host, "paradynd", paradynd_image(world.clone()));
    use tdp::core::{Role, TdpCreate, TdpHandle};
    use tdp::proto::{names, ContextId};
    let mut rm = TdpHandle::init(&world, host, ContextId(1), "rm", Role::ResourceManager).unwrap();
    let app = rm
        .create_process(TdpCreate::new("/bin/app").paused())
        .unwrap();
    let tool = rm
        .create_process(TdpCreate::new("paradynd").args(["-c1", "-a%pid"]))
        .unwrap();
    rm.put(names::PID, &app.to_string()).unwrap();
    // The daemon blocks in tdp_get(cass_addr) — the RM never published
    // one. Kill it after confirming it did not crash-loop or hang the
    // application.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(world.os().status(tool).unwrap(), ProcStatus::Running);
    world.os().kill(tool, 9).unwrap();
    rm.kill_process(app, 9).unwrap();
}
