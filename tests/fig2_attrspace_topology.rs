//! **E2 — Figure 2**: Figure 1 with the attribute-space servers added —
//! a LASS on the remote host and a CASS beside the front-ends.
//!
//! The executable properties (§2.1): each daemon reaches *its own*
//! host's LASS and the CASS, but **cannot** access the LASS of another
//! node; LASSes are started by the RM, the CASS by the RM front-end.

use tdp::attrspace::AttrClient;
use tdp::core::{Role, TdpHandle, World};
use tdp::netsim::FirewallPolicy;
use tdp::proto::{names, Addr, ContextId, TdpError};

const CTX: ContextId = ContextId(1);

#[test]
fn fig2_lass_per_host_cass_central() {
    let world = World::new();
    let fe_host = world.add_host(); // front-end side
    let remote_a = world.add_host();
    let remote_b = world.add_host();

    // The RM front-end starts the CASS; the RM daemons start each LASS
    // via tdp_init.
    let cass = world.ensure_cass(fe_host).unwrap();
    let mut rm_a = TdpHandle::init(&world, remote_a, CTX, "rm_a", Role::ResourceManager).unwrap();
    let mut rm_b = TdpHandle::init(&world, remote_b, CTX, "rm_b", Role::ResourceManager).unwrap();

    // Local values stay local.
    rm_a.put(names::PID, "111").unwrap();
    rm_b.put(names::PID, "222").unwrap();
    let mut rt_a = TdpHandle::init(&world, remote_a, CTX, "rt_a", Role::Tool).unwrap();
    let mut rt_b = TdpHandle::init(&world, remote_b, CTX, "rt_b", Role::Tool).unwrap();
    assert_eq!(rt_a.get(names::PID).unwrap(), "111");
    assert_eq!(rt_b.get(names::PID).unwrap(), "222");

    // Cross-host LASS access is rejected by the server itself.
    let lass_a = world.lass_addr(remote_a).unwrap();
    let mut intruder = AttrClient::connect(world.net(), remote_b, lass_a).unwrap();
    assert!(
        intruder.join(CTX).is_err(),
        "a process cannot access the LASS of another node (§2.1)"
    );

    // Global values travel through the CASS, visible from both hosts.
    rm_a.connect_cass(cass).unwrap();
    rm_b.connect_cass(cass).unwrap();
    rm_a.put_central(
        names::TOOL_FRONTEND_ADDR,
        &Addr::new(fe_host, 2090).to_attr_value(),
    )
    .unwrap();
    assert_eq!(
        rm_b.get_central(names::TOOL_FRONTEND_ADDR).unwrap(),
        Addr::new(fe_host, 2090).to_attr_value()
    );
}

#[test]
fn fig2_cass_reachable_from_private_zone_via_proxy() {
    // Figure 2 with the firewall: daemons on the remote (private) host
    // still reach the CASS, via the RM proxy.
    let world = World::new();
    let fe_host = world.add_host();
    let zone = world.add_private_zone(FirewallPolicy::STRICT);
    let remote = world.add_host_in(zone);
    let cass = world.ensure_cass(fe_host).unwrap();

    world.net().authorize_route(remote, cass);
    let proxy = tdp::netsim::proxy::spawn(world.net(), remote, 9618).unwrap();

    let mut rm = TdpHandle::init(&world, remote, CTX, "rm", Role::ResourceManager).unwrap();
    rm.advertise_proxy(proxy.addr()).unwrap();
    // Handle-level connect_cass falls back to the advertised proxy when
    // the direct path is firewalled.
    let mut rt = TdpHandle::init(&world, remote, CTX, "rt", Role::Tool).unwrap();
    rt.connect_cass(cass).unwrap();
    rt.put_central("announce", "rt alive").unwrap();
    rm.connect_cass(cass).unwrap();
    assert_eq!(rm.get_central("announce").unwrap(), "rt alive");
}

#[test]
fn fig2_tool_init_fails_without_rm_started_lass() {
    // "The LASS's are started by the RM": a tool daemon arriving first
    // has no space to join.
    let world = World::new();
    let host = world.add_host();
    let err = match TdpHandle::init(&world, host, CTX, "rt", Role::Tool) {
        Err(e) => e,
        Ok(_) => panic!("tool init must fail before the RM starts the LASS"),
    };
    assert!(matches!(err, TdpError::Substrate(_)));
    assert!(err.to_string().contains("resource manager"), "{err}");
}
