//! Checkpointing and migration — the paper's intro names checkpointing
//! among the tool capabilities distributed environments lack, and
//! Condor provides it ("including checkpointing and remote file
//! access", §4.1). Here a running job is **vacated** (killed with
//! signal 15), its checkpoint is staged back by the starter, the schedd
//! requeues it, and it **resumes on another machine** from where it
//! left off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tdp::condor::{CondorPool, JobState};
use tdp::core::World;
use tdp::proto::ProcStatus;
use tdp::simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(30);
const UNITS: u64 = 10;

/// A resumable solver: reads its progress from the checkpoint file,
/// works one unit at a time (20 ms each), updates the checkpoint after
/// every unit. `work_counter` counts units actually executed across
/// all incarnations.
fn resumable_app(work_counter: Arc<AtomicU64>) -> ExecImage {
    ExecImage::new(
        ["main", "unit"],
        Arc::new(move |_| {
            let counter = work_counter.clone();
            fn_program(move |ctx| {
                let start: u64 = ctx
                    .fs()
                    .read("ckpt")
                    .ok()
                    .and_then(|d| String::from_utf8(d).ok())
                    .and_then(|s| s.trim().parse().ok())
                    .unwrap_or(0);
                ctx.call("main", |ctx| {
                    for i in start..UNITS {
                        ctx.call("unit", |ctx| {
                            ctx.sleep(Duration::from_millis(20));
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                        ctx.fs().write("ckpt", format!("{}", i + 1).as_bytes());
                    }
                });
                ctx.write_stdout(format!("finished at {UNITS}").as_bytes());
                0
            })
        }),
    )
}

#[test]
fn vacated_job_resumes_from_checkpoint_on_another_machine() {
    let world = World::new();
    let pool = CondorPool::build(&world, 2).unwrap();
    let work = Arc::new(AtomicU64::new(0));
    pool.install_everywhere("/bin/solver", resumable_app(work.clone()));

    let job = pool
        .submit_str(
            "executable = /bin/solver\noutput = out\n+Checkpointing = True\ncheckpoint_file = ckpt\nqueue\n",
        )
        .unwrap();

    // Let it make some progress (at least 3 units), then vacate the
    // machine it runs on and take that machine out of the pool.
    let deadline = std::time::Instant::now() + T;
    while work.load(Ordering::SeqCst) < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "job never made progress"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let victim = pool
        .startds()
        .iter()
        .find(|s| s.is_busy())
        .expect("some machine is running the job");
    victim.vacate().unwrap();
    victim.simulate_crash(); // force the re-run onto the other machine

    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }

    // The job finished…
    assert_eq!(
        world
            .os()
            .fs()
            .read_file(pool.submit_host(), "out")
            .unwrap(),
        format!("finished at {UNITS}").as_bytes()
    );
    // …the final checkpoint was staged back…
    assert_eq!(
        world
            .os()
            .fs()
            .read_file(pool.submit_host(), "ckpt")
            .unwrap(),
        format!("{UNITS}").as_bytes()
    );
    // …and the resume actually skipped completed work: total units
    // executed across both incarnations is less than 2×UNITS but may
    // exceed UNITS by at most the one unit in flight at vacate time.
    let total = work.load(Ordering::SeqCst);
    assert!(total >= UNITS, "all units must be covered: {total}");
    assert!(
        total <= UNITS + 1,
        "resume must not redo finished units (did {total} of {UNITS})"
    );
}

#[test]
fn non_checkpointing_job_stays_killed_when_vacated() {
    // Without +Checkpointing, a vacate is a plain kill: the job
    // completes with killed:15 and is NOT requeued.
    let world = World::new();
    let pool = CondorPool::build(&world, 2).unwrap();
    let work = Arc::new(AtomicU64::new(0));
    pool.install_everywhere("/bin/solver", resumable_app(work.clone()));
    let job = pool
        .submit_str("executable = /bin/solver\nqueue\n")
        .unwrap();
    let deadline = std::time::Instant::now() + T;
    while work.load(Ordering::SeqCst) < 2 {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }
    pool.startds()
        .iter()
        .find(|s| s.is_busy())
        .expect("running somewhere")
        .vacate()
        .unwrap();
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Killed(15)),
        other => panic!("{other:?}"),
    }
    assert!(
        work.load(Ordering::SeqCst) < UNITS,
        "must not have been re-run"
    );
}

#[test]
fn vacate_with_nothing_running_errors() {
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    assert!(pool.startds()[0].vacate().is_err());
}

#[test]
fn checkpointing_survives_repeated_vacates() {
    let world = World::new();
    let pool = CondorPool::build(&world, 2).unwrap();
    let work = Arc::new(AtomicU64::new(0));
    pool.install_everywhere("/bin/solver", resumable_app(work.clone()));
    let job = pool
        .submit_str(
            "executable = /bin/solver\n+Checkpointing = True\ncheckpoint_file = ckpt\nqueue\n",
        )
        .unwrap();
    // Vacate twice (within the requeue budget of 3), from whichever
    // machine currently runs it; do not crash machines so it can bounce.
    for round in 0..2 {
        let deadline = std::time::Instant::now() + T;
        let target = work.load(Ordering::SeqCst) + 2;
        while work.load(Ordering::SeqCst) < target.min(UNITS - 1) {
            assert!(
                std::time::Instant::now() < deadline,
                "round {round}: no progress"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(s) = pool.startds().iter().find(|s| s.is_busy()) {
            let _ = s.vacate();
        }
    }
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    let total = work.load(Ordering::SeqCst);
    assert!(
        (UNITS..=UNITS + 2).contains(&total),
        "units executed: {total}"
    );
}
