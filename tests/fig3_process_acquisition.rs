//! **E3/E4 — Figure 3**: the two TDP scenarios for a run-time tool to
//! operate on an application process.
//!
//! * 3A (create): RM `tdp_init` → `tdp_create_process(AP, paused)` and
//!   `tdp_create_process(RT, run)` *in either order* (the figure's
//!   caption makes the order explicitly free); RT `tdp_init` →
//!   `tdp_attach(pid)` → `tdp_continue_process()`.
//! * 3B (attach): the application is already running; the RM launches
//!   the RT, which attaches, initializes, and continues it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tdp::core::{Role, TdpCreate, TdpHandle, World};
use tdp::proto::{names, ContextId, Pid, ProcStatus};
use tdp::simos::{fn_program, ExecImage};

const CTX: ContextId = ContextId(1);
const T: Duration = Duration::from_secs(10);

/// The RT daemon as an executable the RM launches: the Figure 3 RT
/// column, written against the public TDP API.
fn rt_image(world: World) -> ExecImage {
    ExecImage::from_fn(move |_args| {
        let world = world.clone();
        fn_program(move |ctx| {
            let mut tdp =
                TdpHandle::init(&world, ctx.host(), CTX, "rt", Role::Tool).expect("rt init");
            let pid = Pid::parse(&tdp.get(names::PID).expect("get pid")).expect("parse pid");
            tdp.attach(pid).expect("attach");
            // "performs its initialization" — instrument everything.
            for sym in tdp.symbols(pid).expect("symbols") {
                tdp.arm_probe(pid, &sym).expect("arm");
            }
            tdp.continue_process(pid).expect("continue");
            tdp.wait_terminal(pid, T).expect("app exits");
            let snap = tdp.read_probes(pid).expect("probes");
            // Return the instrumented call count as the exit code so
            // the test can see the tool really observed the run.
            snap.counts.get("work").copied().unwrap_or(0) as i32
        })
    })
}

fn app_image(touched: Arc<AtomicBool>) -> ExecImage {
    ExecImage::new(
        ["main", "work"],
        Arc::new(move |_| {
            let touched = touched.clone();
            fn_program(move |ctx| {
                touched.store(true, Ordering::SeqCst);
                ctx.call("main", |ctx| {
                    for _ in 0..4 {
                        ctx.call("work", |ctx| ctx.compute(5));
                    }
                });
                0
            })
        }),
    )
}

fn run_create_scenario(rt_first: bool) {
    let world = World::new();
    let host = world.add_host();
    let touched = Arc::new(AtomicBool::new(false));
    world
        .os()
        .fs()
        .install_exec(host, "/bin/app", app_image(touched.clone()));
    world
        .os()
        .fs()
        .install_exec(host, "/bin/rt", rt_image(world.clone()));

    // RM column of Figure 3A.
    let mut rm = TdpHandle::init(&world, host, CTX, "rm", Role::ResourceManager).unwrap();
    let (app, rt);
    if rt_first {
        rt = rm.create_process(TdpCreate::new("/bin/rt")).unwrap();
        app = rm
            .create_process(TdpCreate::new("/bin/app").paused())
            .unwrap();
    } else {
        app = rm
            .create_process(TdpCreate::new("/bin/app").paused())
            .unwrap();
        rt = rm.create_process(TdpCreate::new("/bin/rt")).unwrap();
    }
    // Not one instruction of the AP has run yet.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(world.os().status(app).unwrap(), ProcStatus::Created);
    assert!(
        !touched.load(Ordering::SeqCst),
        "paused AP must not have executed"
    );

    // RM → RT: the pid, via the attribute space.
    rm.put(names::PID, &app.to_string()).unwrap();

    // The RT attaches, initializes, continues; both processes finish.
    assert_eq!(
        world.os().wait_terminal(app, T).unwrap(),
        ProcStatus::Exited(0)
    );
    assert!(touched.load(Ordering::SeqCst));
    // RT saw all 4 instrumented calls: it attached *before* main ran.
    assert_eq!(
        world.os().wait_terminal(rt, T).unwrap(),
        ProcStatus::Exited(4)
    );

    // The Figure 3A sequence, as recorded by the trace.
    let tr = world.trace();
    tr.assert_order(
        (Some("rm"), "tdp_init"),
        (Some("rm"), "tdp_create_process(/bin/app, paused)"),
    );
    tr.assert_order(
        (Some("rm"), "tdp_init"),
        (Some("rm"), "tdp_create_process(/bin/rt, run)"),
    );
    tr.assert_order((Some("rt"), "tdp_init"), (Some("rt"), "tdp_attach"));
    tr.assert_order(
        (Some("rt"), "tdp_attach"),
        (Some("rt"), "tdp_continue_process"),
    );
    // The attach can only follow the RM's put of the pid.
    tr.assert_order((Some("rm"), "tdp_put(pid)"), (Some("rt"), "tdp_attach"));
}

#[test]
fn fig3a_create_ap_then_rt() {
    run_create_scenario(false);
}

#[test]
fn fig3a_create_rt_then_ap() {
    // "Note that for the create case, the creation of the application
    // process and RT can occur in either order" — Figure 3 caption.
    run_create_scenario(true);
}

#[test]
fn fig3b_attach_to_running_process() {
    let world = World::new();
    let host = world.add_host();
    // A long-running application, started normally (Figure 3B's AP is
    // already executing when the RT arrives).
    world.os().fs().install_exec(
        host,
        "/bin/server",
        ExecImage::new(
            ["main", "serve"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| {
                        for _ in 0..500 {
                            ctx.call("serve", |ctx| ctx.sleep(Duration::from_millis(2)));
                        }
                    });
                    0
                })
            }),
        ),
    );
    let mut rm = TdpHandle::init(&world, host, CTX, "rm", Role::ResourceManager).unwrap();
    let app = rm.create_process(TdpCreate::new("/bin/server")).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(world.os().status(app).unwrap(), ProcStatus::Running);

    // "At a later time, a RT tool would like to attach": the RM
    // launches the RT and passes the pid through the space.
    world.os().fs().install_exec(
        host,
        "/bin/rt_attach",
        ExecImage::from_fn({
            let world = world.clone();
            move |_| {
                let world = world.clone();
                fn_program(move |ctx| {
                    let mut tdp =
                        TdpHandle::init(&world, ctx.host(), CTX, "rt", Role::Tool).unwrap();
                    let pid = Pid::parse(&tdp.get(names::PID).unwrap()).unwrap();
                    tdp.attach(pid).unwrap();
                    // 3B: attach then *pause* — "the application process
                    // will be stopped at some unknown point in its
                    // execution".
                    tdp.pause_process(pid).unwrap();
                    let paused_ok = tdp.process_status(pid).unwrap() == ProcStatus::Stopped;
                    tdp.arm_probe(pid, "serve").unwrap();
                    tdp.continue_process(pid).unwrap();
                    // Observe a little, then let the RM clean up.
                    ctx.sleep(Duration::from_millis(50));
                    let snap = tdp.read_probes(pid).unwrap();
                    i32::from(!(paused_ok && snap.counts.get("serve").copied().unwrap_or(0) > 0))
                })
            }
        }),
    );
    let rt = rm.create_process(TdpCreate::new("/bin/rt_attach")).unwrap();
    rm.put(names::PID, &app.to_string()).unwrap();
    assert_eq!(
        world.os().wait_terminal(rt, T).unwrap(),
        ProcStatus::Exited(0)
    );
    rm.kill_process(app, 15).unwrap();
    assert_eq!(
        world.os().wait_terminal(app, T).unwrap(),
        ProcStatus::Killed(15)
    );

    let tr = world.trace();
    // In 3B the AP is created (run) before the RT exists at all.
    tr.assert_order(
        (Some("rm"), "tdp_create_process(/bin/server, run)"),
        (Some("rm"), "tdp_create_process(/bin/rt_attach, run)"),
    );
    tr.assert_order(
        (Some("rt"), "tdp_attach"),
        (Some("rt"), "tdp_pause_process"),
    );
    tr.assert_order(
        (Some("rt"), "tdp_pause_process"),
        (Some("rt"), "tdp_continue_process"),
    );
}
