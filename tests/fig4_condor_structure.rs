//! **E5 — Figure 4**: the Condor daemon structure and submission flow.
//!
//! "The submission of a job and the interaction between different
//! Condor daemons": schedd holds the job → matchmaker locates a
//! compatible machine → claiming protocol with the startd → startd
//! spawns a starter → starter runs the job → shadow performs remote
//! syscalls on the submit machine → results return. The condor_master
//! keeps daemons alive on both sides.

use std::sync::Arc;
use std::time::Duration;
use tdp::condor::{CondorPool, JobState};
use tdp::core::World;
use tdp::proto::ProcStatus;
use tdp::simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(30);

fn app() -> ExecImage {
    ExecImage::new(
        ["main"],
        Arc::new(|_| {
            fn_program(|ctx| {
                // Remote-syscall shape: read stdin (staged via the shadow),
                // transform, write stdout (staged back via the shadow).
                let mut data = Vec::new();
                while let Ok(Some(chunk)) = ctx.read_stdin() {
                    data.extend_from_slice(&chunk);
                }
                ctx.call("main", |ctx| ctx.compute(10));
                data.reverse();
                ctx.write_stdout(&data);
                0
            })
        }),
    )
}

#[test]
fn fig4_submission_flow_end_to_end() {
    let world = World::new();
    let pool = CondorPool::build(&world, 2).unwrap();
    pool.install_everywhere("/bin/rev", app());

    // Before submission the matchmaker knows both machines, available.
    let machines = pool.matchmaker().machines();
    assert_eq!(machines.len(), 2);
    assert!(machines.iter().all(|(_, a)| *a));

    world
        .os()
        .fs()
        .write_file(pool.submit_host(), "infile", b"abcdef");
    let job = pool
        .submit_str("executable = /bin/rev\ninput = infile\noutput = outfile\nqueue\n")
        .unwrap();

    // schedd → matchmaker → claim → startd → starter → shadow → done.
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    // The shadow performed the remote I/O on the submit machine.
    assert_eq!(
        world
            .os()
            .fs()
            .read_file(pool.submit_host(), "outfile")
            .unwrap(),
        b"fedcba"
    );

    // The claimed machine was freed after completion (claiming protocol
    // completes its cycle).
    pool.matchmaker()
        .wait_machines(T, |machines| machines.iter().all(|(_, a)| *a))
        .expect("machines never freed");
}

#[test]
fn fig4_claiming_protocol_either_party_may_refuse() {
    // "This is known as a claiming protocol, and either party may
    // decide not to complete the allocation": a busy startd rejects.
    use tdp::condor::classad::ClassAd;
    use tdp_condor::messages::{recv_json_timeout, send_json, ClaimMsg};
    use tdp_condor::startd::Startd;

    let world = World::new();
    let cm = world.add_host();
    let exec = world.add_host();
    let client = world.add_host();
    let mm = tdp::condor::Matchmaker::start(world.net(), cm).unwrap();
    let startd = Startd::start(&world, exec, ClassAd::new(), mm.addr()).unwrap();

    // First claim wins.
    let mut c1 = world.net().connect(client, startd.addr()).unwrap();
    send_json(
        &c1,
        &ClaimMsg::RequestClaim {
            job: tdp::proto::JobId(1),
        },
    )
    .unwrap();
    let r1: ClaimMsg = recv_json_timeout(&mut c1, T).unwrap();
    assert!(matches!(r1, ClaimMsg::ClaimAccepted { .. }));
    assert!(startd.is_busy());

    // Second claim refused.
    let mut c2 = world.net().connect(client, startd.addr()).unwrap();
    send_json(
        &c2,
        &ClaimMsg::RequestClaim {
            job: tdp::proto::JobId(2),
        },
    )
    .unwrap();
    let r2: ClaimMsg = recv_json_timeout(&mut c2, T).unwrap();
    assert!(matches!(r2, ClaimMsg::ClaimRejected { .. }));

    // Schedd-side refusal: release instead of activate.
    if let ClaimMsg::ClaimAccepted { claim_id } = r1 {
        send_json(&c1, &ClaimMsg::ReleaseClaim { claim_id }).unwrap();
        let r: ClaimMsg = recv_json_timeout(&mut c1, T).unwrap();
        assert!(matches!(r, ClaimMsg::Released));
    }
    assert!(!startd.is_busy());
}

#[test]
fn fig4_schedd_queue_holds_jobs_until_resources_free() {
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere("/bin/rev", app());
    // Three jobs, one machine: all must eventually complete, one at a
    // time ("condor_schedd takes care of the job until a suitable and
    // available resource is found").
    let jobs: Vec<_> = (0..3)
        .map(|_| pool.submit_str("executable = /bin/rev\nqueue\n").unwrap())
        .collect();
    for j in jobs {
        assert!(
            matches!(pool.wait_job(j, T).unwrap(), JobState::Completed(_)),
            "job {j} did not complete"
        );
    }
}
