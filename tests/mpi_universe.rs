//! **E8 — §4.3, MPI universe**: the staged startup — "a first process
//! (called 'master process') is started … a paradynd is created
//! afterwards … Once the user issues the run command, the rest of the
//! processes from the application are created with a paradynd attached
//! to each one of them … after reporting to the front-end, they
//! immediately issue a run command."

use std::time::Duration;
use tdp::condor::{CondorPool, JobState};
use tdp::core::World;
use tdp::mpi::{apps, MpiComm};
use tdp::paradyn::{paradynd_image, ParadynFrontend, PerformanceConsultant};
use tdp::proto::ProcStatus;

const T: Duration = Duration::from_secs(60);

fn submit_mpi(fe: &ParadynFrontend, n: u32) -> String {
    format!(
        "universe = MPI\nexecutable = stencil\nmachine_count = {n}\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"paradynd\"\n+ToolDaemonArgs = \"-m{} -p{} -P{} -a%pid\"\nqueue\n",
        fe.host().0,
        fe.control_addr().port.0,
        fe.data_addr().port.0,
    )
}

#[test]
fn mpi_universe_staged_startup_with_tools() {
    let n = 4u32;
    let world = World::new();
    let pool = CondorPool::build(&world, n as usize).unwrap();
    let comm = MpiComm::new(n);
    pool.install_everywhere("stencil", apps::stencil(comm, 3, 50));
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();
    let job = pool.submit_str(&submit_mpi(&fe, n)).unwrap();

    // Phase 1: only the rank-0 master and its daemon.
    let d0 = fe.wait_for_daemons(1, T).unwrap();
    assert_eq!(d0.len(), 1);
    assert_eq!(world.os().status(d0[0].pid).unwrap(), ProcStatus::Created);
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(
        fe.daemons().len(),
        1,
        "no other rank may exist before the run command"
    );

    // Phase 2: the user's run command triggers the remaining ranks,
    // each with its own attached daemon.
    fe.run_all().unwrap();
    let all = fe.wait_for_daemons(n as usize, T).unwrap();
    assert_eq!(all.len(), n as usize);
    // Every daemon monitors a different pid (one per rank).
    let mut pids: Vec<_> = all.iter().map(|d| d.pid).collect();
    pids.sort();
    pids.dedup();
    assert_eq!(pids.len(), n as usize);

    // Phase 3: all ranks complete; per-rank status recorded.
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => {
            assert_eq!(done.len(), n as usize);
            assert!(
                done.values().all(|st| *st == ProcStatus::Exited(0)),
                "{done:?}"
            );
        }
        other => panic!("{other:?}"),
    }

    // The aggregated profile identifies the compute phase as dominant —
    // every rank contributed samples.
    fe.wait_done(n as usize, T).unwrap();
    let samples = fe.samples();
    let b = PerformanceConsultant::default().search(&samples).unwrap();
    assert_eq!(b.symbol, "compute");
    let daemons_sampled: std::collections::HashSet<&str> =
        samples.iter().map(|s| s.daemon.as_str()).collect();
    assert_eq!(daemons_sampled.len(), n as usize);
}

#[test]
fn mpi_universe_ranks_spread_across_machines() {
    let n = 3u32;
    let world = World::new();
    let pool = CondorPool::build(&world, 3).unwrap();
    let comm = MpiComm::new(n);
    pool.install_everywhere("stencil", apps::stencil(comm, 2, 10));
    let job = pool
        .submit_str(&format!(
            "universe = MPI\nexecutable = stencil\nmachine_count = {n}\nqueue\n"
        ))
        .unwrap();
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done.len(), 3),
        other => panic!("{other:?}"),
    }
    // Each machine hosted exactly one rank: all were claimed, all freed.
    let deadline = std::time::Instant::now() + T;
    loop {
        let m = pool.matchmaker().machines();
        if m.iter().all(|(_, a)| *a) {
            break;
        }
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
}
