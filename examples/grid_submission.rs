//! The paper's full motivating stack (§1): a remote user submits
//! through a Globus-style gatekeeper (authentication + RSL) to a Condor
//! pool whose starter speaks TDP, and a Paradyn daemon profiles the job
//! — every layer of middleware negotiated, zero tool changes.
//!
//! ```text
//! cargo run --example grid_submission
//! ```

use std::sync::Arc;
use std::time::Duration;
use tdp::condor::CondorPool;
use tdp::core::World;
use tdp::grid::{Gatekeeper, GramClient, GramState};
use tdp::paradyn::{paradynd_image, ParadynFrontend, PerformanceConsultant};
use tdp::simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(60);

fn main() {
    let world = World::new();

    // The site: a Condor pool plus a gatekeeper on the head node.
    let pool = Arc::new(CondorPool::build(&world, 2).unwrap());
    pool.install_everywhere(
        "/bin/climate",
        ExecImage::new(
            ["main", "advect", "radiate"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| {
                        for _ in 0..8 {
                            ctx.call("advect", |ctx| ctx.compute(70));
                            ctx.call("radiate", |ctx| ctx.compute(30));
                        }
                    });
                    0
                })
            }),
        ),
    );
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    let head = world.add_host();
    let gk = Gatekeeper::start(&world, head, pool.clone()).unwrap();
    gk.authorize("/O=Grid/OU=UW/CN=alice", "proxy-7f3a");
    println!("gatekeeper up at {} (backend: condor pool)", gk.addr());

    // The user's side: a Paradyn front-end and an RSL submission.
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();
    let user_host = world.add_host();
    let rsl = format!(
        r#"&(executable=/bin/climate)(tool=paradynd)(tool_args="-m{} -p{} -P{} -a%pid -A")"#,
        fe.host().0,
        fe.control_addr().port.0,
        fe.data_addr().port.0,
    );
    println!("\nsubmitting RSL:\n  {rsl}");

    // Authentication matters: a bad proxy is refused.
    match GramClient::submit(
        &world,
        user_host,
        gk.addr(),
        "/O=Grid/OU=UW/CN=alice",
        "stolen",
        &rsl,
    ) {
        Err(e) => println!("\nwith a bad proxy token: {e}"),
        Ok(_) => unreachable!(),
    }

    let mut client = GramClient::submit(
        &world,
        user_host,
        gk.addr(),
        "/O=Grid/OU=UW/CN=alice",
        "proxy-7f3a",
        &rsl,
    )
    .unwrap();
    println!(
        "with the right proxy: accepted as {} on backend {}",
        client.job, client.backend
    );

    match client.wait(T).unwrap() {
        GramState::Done(done) => println!("job state: DONE {done:?}"),
        other => {
            println!("job state: {other:?}");
            std::process::exit(1);
        }
    }

    fe.wait_done(1, T).unwrap();
    if let Some(b) = PerformanceConsultant::default().search(&fe.samples()) {
        println!(
            "\nProfiled through all three layers — Consultant: {:?}, `{}` holds {:.0}% of CPU",
            b.hypothesis,
            b.symbol,
            b.fraction * 100.0
        );
    }
}
