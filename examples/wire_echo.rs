//! `wire_echo` — the transport abstraction in isolation: one echo
//! server, one client, run back to back over **all three** backends
//! with the same code.
//!
//! ```text
//! cargo run -q --example wire_echo
//! ```

use tdp::netsim::Network;
use tdp::proto::{Addr, ContextId, HostId, Message, TdpResult};
use tdp::wire::{Endpoint, EpollTransport, SimTransport, TcpTransport, Transport, WireListener};

/// Serve one connection: echo every message back, then exit.
fn echo_once(listener: WireListener) -> TdpResult<()> {
    let mut conn = listener.accept()?;
    println!(
        "  server: accepted {:?} (peer host {:?})",
        conn,
        conn.peer_host()
    );
    while let Ok(msg) = conn.recv_msg() {
        conn.send_msg(&msg)?;
    }
    Ok(())
}

fn run(
    name: &str,
    transport: &dyn Transport,
    server_host: HostId,
    client_host: HostId,
) -> TdpResult<()> {
    println!("{name}:");
    let listener = transport.listen(server_host, 7000)?;
    let endpoint = listener.local_endpoint();
    println!("  server: listening on {endpoint}");
    let server = std::thread::spawn(move || echo_once(listener));

    let mut conn = transport.connect(client_host, &endpoint)?;
    for i in 0..3u64 {
        let msg = Message::Put {
            ctx: ContextId(1),
            key: format!("key{i}"),
            value: format!("value{i}"),
        };
        conn.send_msg(&msg)?;
        let back = conn.recv_msg()?;
        assert_eq!(back, msg);
        println!("  client: echoed {back:?}");
    }
    conn.close();
    server.join().expect("server thread")?;
    Ok(())
}

fn main() -> TdpResult<()> {
    // Backend 1: the simulated fabric.
    let net = Network::new();
    let a = net.add_host();
    let b = net.add_host();
    run("netsim", &SimTransport::new(net), b, a)?;

    // Backend 2: real loopback TCP. Identical driver code — the logical
    // hosts ride the Hello handshake instead of the address.
    run("tcp", &TcpTransport::new(), HostId(1), HostId(0))?;

    // Backend 3: the same loopback sockets, but every connection is
    // multiplexed onto one shared epoll reactor instead of owning
    // threads.
    run("epoll", &EpollTransport::new()?, HostId(1), HostId(0))?;

    // The endpoint types tell the two apart when it matters.
    let sim_ep = Endpoint::Sim(Addr::new(HostId(9), 7777));
    println!("endpoints render as {sim_ep} / tcp://127.0.0.1:<ephemeral>");
    Ok(())
}
