//! `gateway_demo` — start a world and a gateway in front of it,
//! register two tools, then talk to the gateway the way an external
//! client would: raw HTTP/1.1 on a plain `TcpStream` from a second
//! thread, no gateway client library involved. Prints the traced round
//! trip of every request.
//!
//! ```text
//! cargo run -q --example gateway_demo
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use tdp::core::World;
use tdp::gateway::{install_daemon_image, FnTool, Gateway, GatewayConfig, Json, RpcError};
use tdp::proto::ContextId;

/// One raw JSON-RPC POST over a fresh TCP connection; returns the body.
fn raw_rpc(addr: std::net::SocketAddr, body: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect to gateway");
    let req = format!(
        "POST /rpc HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).expect("send request");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("read response");
    resp.split("\r\n\r\n").nth(1).unwrap_or("").to_string()
}

fn main() {
    // -- world + gateway ------------------------------------------------
    let world = World::new();
    let gw_host = world.add_host();
    let worker = world.add_host();
    install_daemon_image(&world, worker, "/bin/rtd");
    let mut gw = Gateway::start(
        &world,
        gw_host,
        GatewayConfig {
            supervise: false,
            ..GatewayConfig::default()
        },
    )
    .expect("start gateway");
    println!("gateway up on http://{}\n", gw.addr());

    // -- register two tools (host side, one-tool-one-file style) --------
    // `job.submit` fakes a submission by stamping attributes; `job.peek`
    // reads them back. Together they show a tool pair sharing state
    // through the bridged attribute space.
    let ctx = ContextId(42);
    gw.core()
        .registry()
        .register(Arc::new(FnTool::new(
            "job.submit",
            "record a job submission in the attribute space",
            move |core, params: &Json| {
                let name = params
                    .str_field("job")
                    .ok_or_else(|| RpcError::invalid_params("job.submit needs a job"))?;
                core.bridge()
                    .with_client(ctx, |c| c.put(ctx, &format!("job.{name}.state"), "queued"))?;
                Ok(Json::obj([("submitted", Json::from(name))]))
            },
        )))
        .expect("register job.submit");
    gw.core()
        .registry()
        .register(Arc::new(FnTool::new(
            "job.peek",
            "read a submitted job's state",
            move |core, params: &Json| {
                let name = params
                    .str_field("job")
                    .ok_or_else(|| RpcError::invalid_params("job.peek needs a job"))?;
                let state = core
                    .bridge()
                    .with_client(ctx, |c| c.try_get(ctx, &format!("job.{name}.state")))?;
                Ok(Json::obj([
                    ("job", Json::from(name)),
                    ("state", Json::from(state)),
                ]))
            },
        )))
        .expect("register job.peek");

    // -- drive it over raw HTTP from a second thread --------------------
    let addr = gw.addr();
    let client = std::thread::spawn(move || {
        let calls = [
            r#"{"jsonrpc":"2.0","id":1,"method":"tool.list"}"#.to_string(),
            r#"{"jsonrpc":"2.0","id":2,"method":"tool.invoke","params":{"name":"job.submit","params":{"job":"render-7"}}}"#
                .to_string(),
            r#"{"jsonrpc":"2.0","id":3,"method":"tool.invoke","params":{"name":"job.peek","params":{"job":"render-7"}}}"#
                .to_string(),
            r#"{"jsonrpc":"2.0","id":4,"method":"gw.info"}"#.to_string(),
        ];
        for body in calls {
            let t = Instant::now();
            let resp = raw_rpc(addr, &body);
            println!("--> {body}");
            println!("<-- {resp}   ({:?})\n", t.elapsed());
        }
    });
    client.join().expect("client thread");

    println!(
        "{} HTTP requests served over {} TDP bridge sessions",
        4,
        gw.core().bridge().pool_size()
    );
    gw.shutdown();
}
