//! A narrated chaos soak: a Condor pool under load while a fault
//! schedule kills a host, crashes attribute-space servers, and the
//! `tdp-ops` supervisor heals what the schedulers cannot. The
//! integration-test version (`tests/chaos_soak.rs`) adds LSF, grid
//! submission and a network partition; this is the readable tour.
//!
//! ```text
//! cargo run --example chaos_soak
//! ```

use std::sync::Arc;
use std::time::Duration;
use tdp::condor::{CondorPool, JobState};
use tdp::core::{CassComponent, LassComponent, Supervisable, World};
use tdp::netsim::{FaultEvent, FaultSchedule};
use tdp::ops::{render_kpis, Supervisor, SupervisorConfig};
use tdp::simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(60);

fn main() {
    let w = World::new();

    // The site: a 3-machine Condor pool.
    let pool = CondorPool::build(&w, 3).unwrap();
    pool.install_everywhere(
        "/bin/app",
        ExecImage::new(
            ["main"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| ctx.compute(5));
                    0
                })
            }),
        ),
    );
    pool.schedd()
        .set_negotiation_timeout(Duration::from_secs(30));

    // The ops plane: a supervisor on the central manager, watching the
    // CASS and a LASS on a dedicated service host.
    let lass_host = w.add_host();
    w.ensure_lass(lass_host).unwrap();
    let sup = Supervisor::start(
        &w,
        pool.central_manager(),
        SupervisorConfig {
            restart_budget: 100,
            ..SupervisorConfig::default()
        },
    )
    .unwrap();
    let lass = LassComponent::new(&w, lass_host);
    let lass_name = lass.ops_name();
    sup.register(Arc::new(LassComponent::new(&w, lass_host)), move || {
        lass.respawn().map(|_| ())
    });
    let cass = CassComponent::new(&w, pool.central_manager());
    sup.register(
        Arc::new(CassComponent::new(&w, pool.central_manager())),
        move || cass.respawn().map(|_| ()),
    );
    {
        let s = pool.schedd().clone();
        sup.register_gauge("condor.queue_depth", move || s.queue_depth() as u64);
    }

    // The chaos: kill an execution host, crash both attribute-space
    // servers, then repair the host late.
    let victim = pool.exec_hosts()[1];
    let schedule = FaultSchedule::new()
        .at(Duration::from_millis(200), FaultEvent::KillHost(victim))
        .at(
            Duration::from_millis(400),
            FaultEvent::Custom(format!("kill-lass:{}", lass_host.0)),
        )
        .at(
            Duration::from_millis(600),
            FaultEvent::Custom("kill-cass".into()),
        )
        .at(Duration::from_millis(1200), FaultEvent::ReviveHost(victim));
    println!("injecting {} faults while 30 jobs run...\n", schedule.len());
    let injector = w.inject_faults(schedule);

    // The load: 30 paced jobs; every one must complete despite the
    // chaos (dead-host ranks are requeued by the schedd).
    let jobs: Vec<_> = (0..30)
        .map(|_| {
            std::thread::sleep(Duration::from_millis(60));
            pool.submit_str("executable = /bin/app\nqueue\n").unwrap()
        })
        .collect();
    let mut done = 0;
    for j in jobs {
        match pool.wait_job(j, T).unwrap() {
            JobState::Completed(_) => done += 1,
            other => panic!("job {j} lost: {other:?}"),
        }
    }

    for (off, ev) in injector.join() {
        println!("  t+{:>5}ms  {ev}", off.as_millis());
    }
    println!("\nall {done}/30 jobs completed — zero lost\n");

    for (name, lats) in sup.recovery_latencies() {
        if !lats.is_empty() {
            println!(
                "{name}: {} recover{}, worst {:?}",
                lats.len(),
                if lats.len() == 1 { "y" } else { "ies" },
                lats.iter().max().unwrap()
            );
        }
    }
    assert!(sup.restarts_of(&lass_name).unwrap() >= 1);
    assert!(sup.escalated().is_empty());

    println!("\nfinal KPI snapshot (also published as tdp.ops.kpi.* attributes):");
    print!("{}", render_kpis(&sup.kpi_snapshot_now()));
}
