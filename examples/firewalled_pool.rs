//! Figure 1/2 in action: execution machines inside a firewalled private
//! network. The tool daemon cannot reach its front-end directly; TDP's
//! channel helper falls back to the resource manager's proxy, and the
//! attribute space disseminates all the addresses.
//!
//! ```text
//! cargo run --example firewalled_pool
//! ```

use std::sync::Arc;
use std::time::Duration;
use tdp::core::{Role, TdpCreate, TdpHandle, World};
use tdp::netsim::FirewallPolicy;
use tdp::proto::{names, Addr, ContextId, Pid, TdpError};
use tdp::simos::{fn_program, ExecImage};

fn main() {
    let world = World::new();
    // Public side: the user's desktop with the tool front-end.
    let desktop = world.add_host();
    // Private side: execution host + the RM's gateway.
    let zone = world.add_private_zone(FirewallPolicy::STRICT);
    let exec = world.add_host_in(zone);
    let gateway = world.add_host_in(zone);

    let fe_listener = world.net().listen(desktop, 2090).unwrap();
    let fe_addr = Addr::new(desktop, 2090);

    // The RM's pre-existing authorized route (Condor-style connection
    // brokering); TDP adds no new permissions.
    world.net().authorize_route(gateway, fe_addr);
    let proxy = tdp::netsim::proxy::spawn(world.net(), gateway, 9618).unwrap();
    println!("firewalled zone up; RM proxy at {}", proxy.addr());

    world.os().fs().install_exec(
        exec,
        "/bin/app",
        ExecImage::new(
            ["main"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| ctx.compute(100));
                    0
                })
            }),
        ),
    );

    let ctx = ContextId::DEFAULT;
    let mut rm = TdpHandle::init(&world, exec, ctx, "rm", Role::ResourceManager).unwrap();
    rm.advertise_frontend(fe_addr).unwrap();
    rm.advertise_proxy(proxy.addr()).unwrap();
    let app = rm
        .create_process(TdpCreate::new("/bin/app").paused())
        .unwrap();
    rm.put(names::PID, &app.to_string()).unwrap();

    let mut tool = TdpHandle::init(&world, exec, ctx, "tool", Role::Tool).unwrap();
    match world.net().connect(exec, fe_addr) {
        Err(TdpError::BlockedByFirewall { .. }) => {
            println!("direct connection exec -> front-end: BLOCKED by firewall (as designed)")
        }
        other => panic!("expected a firewall block, got {other:?}"),
    }
    let chan = tool.open_tool_channel().unwrap();
    println!("open_tool_channel: connected via the RM proxy");
    chan.send(b"hello from behind the firewall").unwrap();
    let mut fe_session = fe_listener.accept().unwrap();
    println!(
        "front-end received: {:?}",
        String::from_utf8_lossy(&fe_session.recv().unwrap())
    );

    let pid = Pid::parse(&tool.get(names::PID).unwrap()).unwrap();
    tool.attach(pid).unwrap();
    tool.continue_process(pid).unwrap();
    let st = tool.wait_terminal(pid, Duration::from_secs(10)).unwrap();
    println!("application finished: {st:?}");
    println!(
        "network stats: {} connections opened, {} blocked by firewalls",
        world.net().stats().connections_opened,
        world.net().stats().connections_blocked
    );
}
