//! **E9 — the "< 500 lines" claim.**
//!
//! §4.3: "The process control of both Paradyn and Condor were modified
//! to use the TDP library. While these modifications involved some
//! re-arranging of the related code in each system, the total code
//! involved was less than 500 lines."
//!
//! Our analog: measure the *TDP integration surface* of both substrate
//! systems — the lines in Condor's starter and Paradyn's daemon that
//! exist solely to speak TDP — and compare against the paper's bound.
//!
//! ```text
//! cargo run --example integration_loc
//! ```

use std::fs;
use std::path::Path;

/// Count non-blank, non-comment source lines.
fn sloc(text: &str) -> usize {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

/// Lines that mention the TDP API (calls through `TdpHandle`, the
/// `tdp_*` vocabulary, or the standard attribute names) — the
/// modification surface a port of an *existing* system would add.
fn tdp_surface(text: &str) -> usize {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .filter(|l| {
            let l = l.to_ascii_lowercase();
            l.contains("tdp") || l.contains("names::") || l.contains("attr")
        })
        .count()
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = [
        (
            "condor starter (RM-side integration)",
            "crates/condor/src/starter.rs",
        ),
        (
            "paradynd (RT-side integration)",
            "crates/paradyn/src/daemon.rs",
        ),
    ];
    println!("{:<42} {:>8} {:>14}", "component", "SLOC", "TDP surface");
    println!("{}", "-".repeat(68));
    let mut total_surface = 0;
    let mut total_sloc = 0;
    for (label, rel) in files {
        let text = fs::read_to_string(root.join(rel)).expect("read source");
        let s = sloc(&text);
        let t = tdp_surface(&text);
        total_sloc += s;
        total_surface += t;
        println!("{label:<42} {s:>8} {t:>14}");
    }
    println!("{}", "-".repeat(68));
    println!("{:<42} {total_sloc:>8} {total_surface:>14}", "total");
    println!();
    println!("paper (§4.3): total modification to Condor + Paradyn < 500 lines");
    println!(
        "measured:     TDP integration surface = {total_surface} lines ({})",
        if total_surface < 500 {
            "within the paper's bound"
        } else {
            "EXCEEDS the bound"
        }
    );
    if total_surface >= 500 {
        std::process::exit(1);
    }
}
