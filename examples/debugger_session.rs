//! A debugging session with `tdb`, the gdb-shaped tool of the taxonomy:
//! launch paused, set breakpoints, inspect the stack, step, watch call
//! counters, continue to exit.
//!
//! ```text
//! cargo run --example debugger_session
//! ```

use std::sync::Arc;
use std::time::Duration;
use tdp::core::World;
use tdp::proto::ContextId;
use tdp::simos::{fn_program, ExecImage};
use tdp::tools::{Tdb, TdbEvent};

const T: Duration = Duration::from_secs(10);

fn main() {
    let world = World::new();
    let host = world.add_host();
    world.os().fs().install_exec(
        host,
        "/bin/payroll",
        ExecImage::new(
            ["main", "load_employees", "compute_pay", "audit", "emit"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| {
                        ctx.call("load_employees", |ctx| ctx.compute(5));
                        for _ in 0..4 {
                            ctx.call("compute_pay", |ctx| {
                                ctx.compute(20);
                                ctx.call("audit", |ctx| ctx.compute(3));
                            });
                        }
                        ctx.call("emit", |ctx| ctx.write_stdout(b"payroll done\n"));
                    });
                    0
                })
            }),
        ),
    );

    let mut dbg = Tdb::launch(&world, host, ContextId(1), "/bin/payroll", &[]).unwrap();
    println!(
        "(tdb) file /bin/payroll   # symbols: {:?}",
        dbg.symbols().unwrap()
    );

    println!("(tdb) break audit");
    dbg.breakpoint("audit").unwrap();
    dbg.watch_calls("compute_pay").unwrap();

    println!("(tdb) run");
    dbg.run().unwrap();
    let mut stop = 0;
    loop {
        match dbg.wait_stop(T).unwrap() {
            TdbEvent::Breakpoint(sym) => {
                stop += 1;
                println!(
                    "\nBreakpoint {stop}, {sym} ()\n(tdb) backtrace\n{}",
                    dbg.backtrace()
                        .unwrap()
                        .iter()
                        .rev()
                        .enumerate()
                        .map(|(i, f)| format!("#{i}  {f} ()"))
                        .collect::<Vec<_>>()
                        .join("\n")
                );
                let info = dbg.info().unwrap();
                println!(
                    "(tdb) info counters   # compute_pay called {} times so far",
                    info.counts.get("compute_pay").copied().unwrap_or(0)
                );
                if stop == 2 {
                    println!("(tdb) delete breakpoints");
                    dbg.clear("audit").unwrap();
                }
                println!("(tdb) continue");
                dbg.run().unwrap();
            }
            TdbEvent::Terminated(st) => {
                println!("\n[process exited: {st:?}]");
                break;
            }
        }
    }
    let info = dbg.info().unwrap();
    println!(
        "final: compute_pay ran {} times",
        info.counts["compute_pay"]
    );
}
