//! Regenerate **Figure 6** of the paper ("TDP Function Calls from the
//! Condor and Paradyn Sides") as a live sequence diagram: run the real
//! Parador pipeline and render the recorded TDP calls over the starter
//! and paradynd lifelines.
//!
//! ```text
//! cargo run --example figure6_regenerated
//! ```

use std::sync::Arc;
use std::time::Duration;
use tdp::condor::{CondorPool, JobState};
use tdp::core::World;
use tdp::paradyn::{paradynd_image, ParadynFrontend};
use tdp::simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(30);

fn main() {
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere(
        "/bin/app",
        ExecImage::new(
            ["main", "work"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| ctx.call("work", |ctx| ctx.compute(10)));
                    0
                })
            }),
        ),
    );
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();
    let submit = format!(
        "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"paradynd\"\n+ToolDaemonArgs = \"-m{} -p{} -P{} -a%pid\"\nqueue\n",
        fe.host().0,
        fe.control_addr().port.0,
        fe.data_addr().port.0,
    );
    let job = pool.submit_str(&submit).unwrap();
    fe.wait_for_daemons(1, T).unwrap();
    fe.run_all().unwrap();
    assert!(matches!(
        pool.wait_job(job, T).unwrap(),
        JobState::Completed(_)
    ));

    println!("Figure 6, regenerated from the live run:\n");
    println!(
        "{}",
        world.trace().render_sequence(&["starter", "paradynd*"])
    );
    println!("(compare with the paper: starter tdp_init → create(AP, paused) →");
    println!(" create(paradynd) → put(pid); paradynd tdp_init → get(pid) →");
    println!(" tdp_attach → tdp_continue_process.)");
}
