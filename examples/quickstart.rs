//! Quickstart: the smallest complete TDP session.
//!
//! A resource manager creates an application *paused at exec*, a tool
//! attaches and instruments it before a single instruction has run, the
//! application executes, and the tool reports what it measured.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;
use tdp::core::{Role, TdpCreate, TdpHandle, World};
use tdp::proto::{names, ContextId, Pid};
use tdp::simos::{fn_program, ExecImage};

fn main() {
    // A world: simulated kernel + network. One execution host.
    let world = World::new();
    let host = world.add_host();

    // Install an "executable": a program with a symbol table.
    world.os().fs().install_exec(
        host,
        "/bin/fibber",
        ExecImage::new(
            ["main", "fib", "print"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| {
                        for n in 0..15u64 {
                            ctx.call("fib", |ctx| ctx.compute(1 << (n / 3)));
                        }
                        ctx.call("print", |ctx| ctx.write_stdout(b"done\n"));
                    });
                    0
                })
            }),
        ),
    );

    // The resource manager side: tdp_init (starts the LASS), create the
    // application paused, publish its pid.
    let ctx = ContextId::DEFAULT;
    let mut rm = TdpHandle::init(&world, host, ctx, "rm", Role::ResourceManager).unwrap();
    let app = rm
        .create_process(TdpCreate::new("/bin/fibber").paused())
        .unwrap();
    println!(
        "[rm]   created {app} paused at exec: status = {:?}",
        rm.process_status(app).unwrap()
    );
    rm.put(names::PID, &app.to_string()).unwrap();

    // The tool side: tdp_init, blocking tdp_get of the pid, attach,
    // instrument, continue.
    let mut tool = TdpHandle::init(&world, host, ctx, "tool", Role::Tool).unwrap();
    let pid = Pid::parse(&tool.get(names::PID).unwrap()).unwrap();
    tool.attach(pid).unwrap();
    println!(
        "[tool] attached to {pid}; symbols = {:?}",
        tool.symbols(pid).unwrap()
    );
    tool.arm_probe(pid, "fib").unwrap();
    tool.arm_probe(pid, "print").unwrap();
    tool.continue_process(pid).unwrap();

    // Wait and report.
    let status = tool.wait_terminal(pid, Duration::from_secs(10)).unwrap();
    let probes = tool.read_probes(pid).unwrap();
    println!("[tool] application finished: {status:?}");
    let mut syms: Vec<_> = probes.counts.keys().collect();
    syms.sort();
    for sym in syms {
        println!(
            "[tool]   {sym:8} calls={:<4} cpu={:<6} self={}",
            probes.counts[sym],
            probes.time.get(sym).unwrap_or(&0),
            probes.self_time.get(sym).unwrap_or(&0),
        );
    }

    // Everything that happened, as the TDP call trace.
    println!("\nTDP call trace:\n{}", world.trace().render());
}
