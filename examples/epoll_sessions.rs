//! `epoll_sessions` — the reactor backend's scaling story: hold
//! hundreds of live attribute-space sessions in one process and watch
//! the wire-layer thread count stay flat.
//!
//! ```text
//! cargo run -q --release --example epoll_sessions
//! ```
//!
//! Over the plain TCP backend every connection costs a writer thread
//! (plus the blocked reader), so 500 sessions is ~500 extra OS threads
//! before the tool has done any work. Over `World::new_epoll` all
//! sockets share one reactor thread and a small worker pool — the open
//! item ROADMAP.md recorded after PR 1.

use std::time::Instant;
use tdp::core::World;
use tdp::proto::ContextId;
use tdp::wire::wire_threads;

const SESSIONS: u64 = 500;

fn census(label: &str) {
    let threads = wire_threads();
    println!("  {label:<28} {} wire threads: {threads:?}", threads.len());
}

fn main() {
    let world = World::new_epoll();
    let fe = world.add_host();
    let cass = world.ensure_cass(fe).unwrap();
    census("before any session");

    let t0 = Instant::now();
    let mut sessions = Vec::new();
    for i in 0..SESSIONS {
        let mut c = world.attr_connect(fe, cass).unwrap();
        let ctx = ContextId(i);
        c.join(ctx).unwrap();
        c.put(ctx, "tool", &format!("daemon-{i}")).unwrap();
        sessions.push((ctx, c));
    }
    println!(
        "  opened {SESSIONS} sessions (join+put each) in {:.1?}",
        t0.elapsed()
    );
    census(&format!("with {SESSIONS} live sessions"));

    // Every session stays serviceable.
    let t1 = Instant::now();
    for (ctx, c) in sessions.iter_mut() {
        assert_eq!(c.get(*ctx, "tool").unwrap(), format!("daemon-{}", ctx.0));
    }
    println!(
        "  round-tripped all {SESSIONS} sessions in {:.1?}",
        t1.elapsed()
    );

    drop(sessions);
    println!("done: thread count stayed O(pool), not O(sessions)");
}
