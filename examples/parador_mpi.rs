//! Parador, MPI universe — §4.3's staged parallel startup: rank 0 (the
//! "master process") is created paused and handed to its paradynd; once
//! the user issues *run*, the remaining ranks are created, each with an
//! auto-running paradynd attached.
//!
//! ```text
//! cargo run --example parador_mpi
//! ```

use std::time::Duration;
use tdp::condor::{CondorPool, JobState};
use tdp::core::World;
use tdp::mpi::{apps, MpiComm};
use tdp::paradyn::{paradynd_image, ParadynFrontend, PerformanceConsultant};

const T: Duration = Duration::from_secs(60);
const NRANKS: u32 = 4;

fn main() {
    let world = World::new();
    let pool = CondorPool::build(&world, NRANKS as usize).unwrap();
    let comm = MpiComm::new(NRANKS);
    // A stencil solver: compute-heavy with halo exchanges and a global
    // residual reduction per iteration.
    pool.install_everywhere("stencil", apps::stencil(comm, 5, 60));
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();

    let submit = format!(
        "universe = MPI\nexecutable = stencil\nmachine_count = {NRANKS}\n\
         +SuspendJobAtExec = True\n+ToolDaemonCmd = \"paradynd\"\n\
         +ToolDaemonArgs = \"-m{} -p{} -P{} -a%pid\"\nqueue\n",
        fe.host().0,
        fe.control_addr().port.0,
        fe.data_addr().port.0
    );
    println!("submitting {NRANKS}-rank MPI job:\n{submit}");
    let job = pool.submit_str(&submit).unwrap();

    // Stage 1: only the master process exists.
    let d0 = fe.wait_for_daemons(1, T).unwrap();
    println!(
        "rank 0 master created (pid {}), its paradynd is ready",
        d0[0].pid
    );
    std::thread::sleep(Duration::from_millis(100));
    println!("daemons before run command: {}", fe.daemons().len());

    // Stage 2: the run command fans the job out.
    println!("issuing run…");
    fe.run_all().unwrap();
    let all = fe.wait_for_daemons(NRANKS as usize, T).unwrap();
    println!("daemons after run command:  {} (one per rank)", all.len());
    for d in &all {
        println!("  {} -> pid {}", d.daemon, d.pid);
    }

    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => {
            let mut ranks: Vec<_> = done.iter().collect();
            ranks.sort_by_key(|(rank, _)| **rank);
            println!("\nall ranks done:");
            for (rank, st) in ranks {
                println!("  rank {rank}: {st:?}");
            }
        }
        other => {
            println!("job failed: {other:?}");
            std::process::exit(1);
        }
    }
    fe.wait_done(NRANKS as usize, T).unwrap();

    // Aggregate per-symbol across ranks.
    println!("\naggregated profile:");
    let mut by_symbol: std::collections::BTreeMap<&str, (u64, u64)> = Default::default();
    let samples = fe.samples();
    for s in &samples {
        let e = by_symbol.entry(s.symbol.as_str()).or_insert((0, 0));
        e.0 += s.count;
        e.1 += s.self_time;
    }
    for (sym, (calls, cpu)) in &by_symbol {
        println!("  {sym:<16} calls={calls:<5} self-cpu={cpu}");
    }
    if let Some(b) = PerformanceConsultant::default().search(&samples) {
        println!(
            "\nPerformance Consultant: {:?} — `{}` ({:.0}% of measured CPU)",
            b.hypothesis,
            b.symbol,
            b.fraction * 100.0
        );
    }
}
