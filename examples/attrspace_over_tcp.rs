//! `attrspace_over_tcp` — the Figure-2 attribute-space topology with
//! every byte on real loopback sockets: `World::new_tcp()` is the only
//! line that differs from the simulated version.
//!
//! ```text
//! cargo run -q --example attrspace_over_tcp
//! ```

use tdp::core::{Role, TdpHandle, World};
use tdp::proto::{names, ContextId, TdpResult};

fn main() -> TdpResult<()> {
    let world = World::new_tcp();
    println!("transport mode: {:?}", world.transport_mode());

    let fe_host = world.add_host();
    let exec_host = world.add_host();
    let ctx = ContextId(1);

    // RM front-end starts the CASS; the RM daemon's tdp_init starts the
    // exec host's LASS. Both bind real ephemeral TCP ports behind their
    // stable logical addresses.
    let cass = world.ensure_cass(fe_host)?;
    println!("CASS at logical {cass}");
    let mut rm = TdpHandle::init(&world, exec_host, ctx, "rm", Role::ResourceManager)?;
    println!("LASS at logical {}", world.lass_addr(exec_host).unwrap());

    // Local dissemination: RM → LASS → tool.
    rm.put(names::PID, "4242")?;
    let mut rt = TdpHandle::init(&world, exec_host, ctx, "rt", Role::Tool)?;
    println!("tool read {} = {}", names::PID, rt.get(names::PID)?);

    // Global dissemination through the CASS.
    rm.connect_cass(cass)?;
    rt.connect_cass(cass)?;
    rm.put_central("job/status", "running")?;
    println!(
        "tool read central job/status = {}",
        rt.get_central("job/status")?
    );

    // The locality rule holds over TCP: a client dialling from another
    // logical host is rejected by the LASS itself (its identity travels
    // in the transport handshake, not the socket address — every socket
    // here is 127.0.0.1).
    let lass = world.lass_addr(exec_host).unwrap();
    let mut intruder = world.attr_connect(fe_host, lass)?;
    match intruder.join(ctx) {
        Err(e) => println!("remote LASS access rejected: {e}"),
        Ok(_) => unreachable!("LASS must reject remote clients"),
    }

    rt.exit()?;
    rm.exit()?;
    println!("\ntrace:\n{}", world.trace().render());
    Ok(())
}
