//! Attach mode (§2.2 case 3 / Figure 3B): a server-style application is
//! already running; a tool attaches mid-flight, pauses it "at some
//! unknown point in its execution", instruments it, resumes it, samples
//! for a while, then detaches — leaving the application running.
//!
//! ```text
//! cargo run --example attach_running_job
//! ```

use std::sync::Arc;
use std::time::Duration;
use tdp::core::{Role, TdpCreate, TdpHandle, World};
use tdp::proto::{names, ContextId, Pid, ProcStatus};
use tdp::simos::{fn_program, ExecImage};

fn main() {
    let world = World::new();
    let host = world.add_host();
    world.os().fs().install_exec(
        host,
        "/bin/server",
        ExecImage::new(
            ["main", "handle_request", "idle"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| {
                        for _ in 0..10_000 {
                            ctx.call("handle_request", |ctx| ctx.compute(3));
                            ctx.call("idle", |ctx| ctx.sleep(Duration::from_millis(1)));
                        }
                    });
                    0
                })
            }),
        ),
    );

    let ctx = ContextId::DEFAULT;
    let mut rm = TdpHandle::init(&world, host, ctx, "rm", Role::ResourceManager).unwrap();
    let server = rm.create_process(TdpCreate::new("/bin/server")).unwrap();
    println!("server {server} running…");
    std::thread::sleep(Duration::from_millis(100));
    rm.put(names::PID, &server.to_string()).unwrap();

    // The tool arrives later.
    let mut tool = TdpHandle::init(&world, host, ctx, "profiler", Role::Tool).unwrap();
    let pid = Pid::parse(&tool.get(names::PID).unwrap()).unwrap();
    tool.attach(pid).unwrap();
    tool.pause_process(pid).unwrap();
    println!(
        "attached and paused at an unknown point: {:?}",
        tool.process_status(pid).unwrap()
    );
    tool.arm_probe(pid, "handle_request").unwrap();
    tool.continue_process(pid).unwrap();

    // Sample for a little while.
    for i in 1..=5 {
        std::thread::sleep(Duration::from_millis(60));
        let snap = tool.read_probes(pid).unwrap();
        println!(
            "sample {i}: handle_request calls={} cpu={}",
            snap.counts.get("handle_request").unwrap_or(&0),
            snap.time.get("handle_request").unwrap_or(&0),
        );
    }

    // Detach: the server keeps running, uninstrumented.
    tool.detach(pid).unwrap();
    assert_eq!(world.os().status(pid).unwrap(), ProcStatus::Running);
    println!("detached; server still running. Shutting it down.");
    rm.kill_process(pid, 15).unwrap();
    let st = rm.wait_terminal(pid, Duration::from_secs(5)).unwrap();
    println!("server terminated: {st:?}");
}
