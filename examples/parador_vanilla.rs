//! Parador, vanilla universe — the paper's §4.3 pilot, end to end:
//! a Condor pool runs a submit file with `+SuspendJobAtExec` and
//! `+ToolDaemon*` directives (Figure 5B); the starter speaks TDP to
//! launch the application paused and hand it to `paradynd`; the Paradyn
//! front-end steers the run and the Performance Consultant names the
//! bottleneck.
//!
//! ```text
//! cargo run --example parador_vanilla
//! ```

use std::sync::Arc;
use std::time::Duration;
use tdp::condor::{CondorPool, JobState};
use tdp::core::World;
use tdp::paradyn::{paradynd_image, ParadynFrontend, PerformanceConsultant};
use tdp::simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(30);

fn main() {
    let world = World::new();
    let pool = CondorPool::build(&world, 2).unwrap();
    println!(
        "pool up: central manager {}, submit {}, {} execution machines",
        pool.central_manager(),
        pool.submit_host(),
        pool.exec_hosts().len()
    );

    // The application: a solver whose `relax` phase dominates.
    pool.install_everywhere(
        "/bin/solver",
        ExecImage::new(
            ["main", "setup", "relax", "checkpoint"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    let _ = ctx.read_stdin();
                    ctx.call("main", |ctx| {
                        ctx.call("setup", |ctx| ctx.compute(40));
                        for _ in 0..30 {
                            ctx.call("relax", |ctx| ctx.compute(85));
                            ctx.call("checkpoint", |ctx| ctx.compute(5));
                        }
                    });
                    ctx.write_stdout(b"converged\n");
                    0
                })
            }),
        ),
    );
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    world
        .os()
        .fs()
        .write_file(pool.submit_host(), "infile", b"grid 64x64\n");

    // "In our tests, the Paradyn Front-end was started first. This step
    // was required because the front-end publishes two port numbers that
    // paradynds must use to connect to it."
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();
    let submit = format!(
        r#"universe = Vanilla
executable = /bin/solver
input = infile
output = outfile
transfer_files = never
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-zunix -l3 -m{} -p{} -P{} -a%pid"
+ToolDaemonOutput = "daemon.out"
+ToolDaemonError = "daemon.err"
queue
"#,
        fe.host().0,
        fe.control_addr().port.0,
        fe.data_addr().port.0
    );
    println!("\nsubmit file:\n{submit}");
    let job = pool.submit_str(&submit).unwrap();

    let daemons = fe.wait_for_daemons(1, T).unwrap();
    println!(
        "paradynd ready: {} monitoring pid {} (symbols {:?})",
        daemons[0].daemon, daemons[0].pid, daemons[0].symbols
    );
    println!("application is suspended; issuing the run command…");
    fe.run_all().unwrap();

    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => println!("job {job} completed: {done:?}"),
        other => {
            println!("job did not complete: {other:?}");
            std::process::exit(1);
        }
    }
    fe.wait_done(1, T).unwrap();

    println!("\nprofile (latest samples):");
    for s in fe.samples() {
        println!(
            "  {:<12} calls={:<4} cpu={:<6} self={:<6} (daemon {})",
            s.symbol, s.count, s.time, s.self_time, s.daemon
        );
    }
    if let Some(b) = PerformanceConsultant::default().search(&fe.samples()) {
        println!(
            "\nPerformance Consultant: {:?} — `{}` holds {:.0}% of measured CPU ({} calls)",
            b.hypothesis,
            b.symbol,
            b.fraction * 100.0,
            b.calls
        );
    }

    let out = world
        .os()
        .fs()
        .read_file(pool.submit_host(), "outfile")
        .unwrap();
    println!("\nstaged back to submit machine:");
    println!("  outfile    = {:?}", String::from_utf8_lossy(&out));
    for f in ["daemon.out", "daemon.err"] {
        println!(
            "  {f:10} = {} bytes",
            world
                .os()
                .fs()
                .read_file(pool.submit_host(), f)
                .map(|d| d.len())
                .unwrap_or(0)
        );
    }
    for f in world.os().fs().list(pool.submit_host(), "paradynd") {
        let data = world.os().fs().read_file(pool.submit_host(), &f).unwrap();
        println!("  {f} =\n{}", textwrap(&String::from_utf8_lossy(&data)));
    }
}

fn textwrap(s: &str) -> String {
    s.lines()
        .map(|l| format!("      {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
