//! The second resource manager: an LSF/NQE-style cluster runs the same
//! tool daemons Condor runs — the paper's m + n promise made concrete.
//!
//! ```text
//! cargo run --example lsf_cluster
//! ```

use std::sync::Arc;
use std::time::Duration;
use tdp::core::World;
use tdp::lsf::{LsfCluster, LsfJobState, LsfRequest};
use tdp::simos::{fn_program, ExecImage};
use tdp::tools::tracey_image;

const T: Duration = Duration::from_secs(30);

fn main() {
    let world = World::new();
    let master = world.add_host();
    let cluster = LsfCluster::start(&world, master).unwrap();

    // Three execution hosts, two slots each.
    let app = ExecImage::new(
        ["main", "simulate", "write_frames"],
        Arc::new(|args| {
            let frames: u64 = args.last().and_then(|a| a.parse().ok()).unwrap_or(4);
            fn_program(move |ctx| {
                ctx.call("main", |ctx| {
                    for _ in 0..frames {
                        ctx.call("simulate", |ctx| ctx.compute(25));
                        ctx.call("write_frames", |ctx| ctx.compute(5));
                    }
                });
                ctx.write_stdout(b"render complete\n");
                0
            })
        }),
    );
    let mut sbds = Vec::new();
    for _ in 0..3 {
        let h = world.add_host();
        world.os().fs().install_exec(h, "/bin/render", app.clone());
        world
            .os()
            .fs()
            .install_exec(h, "tracey", tracey_image(world.clone()));
        sbds.push(cluster.add_host(h, 2).unwrap());
    }
    while cluster.bhosts().len() < 3 {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("bhosts:");
    for (name, slots, used) in cluster.bhosts() {
        println!("  {name:<16} slots={slots} used={used}");
    }

    // A farm of jobs, each rendered under the coverage tool.
    println!("\nbsub: 6 render jobs with tracey attached");
    let jobs: Vec<_> = (0..6)
        .map(|i| {
            cluster
                .bsub(
                    LsfRequest::new("/bin/render")
                        .args([format!("{}", 3 + i)])
                        .output(format!("frames_{i}.out"))
                        .suspended()
                        .tool("tracey", vec![]),
                )
                .unwrap()
        })
        .collect();

    for job in jobs {
        match cluster.wait_job(job, T).unwrap() {
            LsfJobState::Done(done) => println!("  {job}: done {done:?}"),
            other => {
                println!("  {job}: {other:?}");
                std::process::exit(1);
            }
        }
    }

    // Outputs and tool reports staged back to the master host inline.
    let mut reports: Vec<String> = world
        .os()
        .fs()
        .list(master, "")
        .into_iter()
        .filter(|f| f.ends_with(".coverage") || f.starts_with("frames_"))
        .collect();
    reports.sort();
    println!("\nartifacts on the master host:");
    for f in &reports {
        let len = world
            .os()
            .fs()
            .read_file(master, f)
            .map(|d| d.len())
            .unwrap_or(0);
        println!("  {f} ({len} bytes)");
    }
    let coverage = reports.iter().filter(|f| f.ends_with(".coverage")).count();
    println!(
        "\n{coverage} coverage reports from 6 jobs across 3 hosts — zero Condor code involved."
    );
}
