//! Offline shim for `criterion` (see `stubs/README.md`).
//!
//! Provides the `Criterion`/`BenchmarkGroup`/`Bencher` API surface the
//! workspace's benches use, measuring mean wall-clock per iteration
//! with a short warmup and printing one line per benchmark. No
//! statistics, plots, or baselines — this is a smoke-and-magnitude
//! harness for offline runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to `criterion_group!` functions.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.measurement_time, self.sample_size, f);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// Identifier with an optional parameter, e.g. `scaling/16`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Per-iteration work declaration, used only to annotate throughput in
/// the printed label.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = match self.throughput {
            Some(Throughput::Elements(n)) => format!("{}/{} ({n} elems)", self.name, id),
            Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
                format!("{}/{} ({n} bytes)", self.name, id)
            }
            None => format!("{}/{}", self.name, id),
        };
        run_benchmark(&label, self.measurement_time, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.measurement_time, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Per-benchmark timing driver.
pub struct Bencher {
    /// Iterations the driver asks for in the current sample.
    iters: u64,
    /// Wall-clock the closure reported (or was measured) for them.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    measurement_time: Duration,
    sample_size: usize,
    mut f: F,
) {
    // Warmup + calibration: find an iteration count whose sample takes
    // roughly measurement_time / sample_size.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.div_f64(sample_size.max(1) as f64);
    let iters_per_sample =
        (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let started = Instant::now();
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
        // Never run past twice the requested measurement window.
        if started.elapsed() > measurement_time * 2 {
            break;
        }
    }
    let mean = if total_iters > 0 {
        total.as_nanos() as f64 / total_iters as f64
    } else {
        f64::NAN
    };
    println!(
        "{label:<50} time: {} /iter ({total_iters} iters)",
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(20)).sample_size(3);
        let mut g = c.benchmark_group("shim");
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_custom_uses_reported_time() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(10)).sample_size(2);
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(iters * 5))
        });
    }
}
