//! Offline shim for `bytes` (see `stubs/README.md`).
//!
//! Implements the `Bytes`/`BytesMut` pair and the `Buf`/`BufMut`
//! traits with the big-endian accessors the TDP codec uses. `Bytes`
//! is a cheaply-cloneable view over shared storage; `BytesMut` is a
//! growable buffer with an amortized-O(1) consumed-prefix offset so
//! streaming decoders can `advance`/`split_to` without quadratic
//! copying.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read cursor over a contiguous byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

/// Append-only writer over a growable byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

// --------------------------------------------------------------- Bytes

/// An immutable, cheaply-cloneable slice of shared bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", self.as_slice())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

// ------------------------------------------------------------ BytesMut

/// A growable byte buffer with an amortized consumed-prefix offset.
#[derive(Default)]
pub struct BytesMut {
    buf: Vec<u8>,
    // Logical start: everything before `off` has been consumed.
    off: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            off: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len() - self.off
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.buf.capacity() - self.off
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.off = 0;
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = BytesMut {
            buf: self.as_slice()[..at].to_vec(),
            off: 0,
        };
        self.consume(at);
        head
    }

    /// Takes the entire contents, leaving `self` empty.
    pub fn split(&mut self) -> BytesMut {
        let all = self.len();
        self.split_to(all)
    }

    pub fn freeze(mut self) -> Bytes {
        if self.off > 0 {
            self.buf.drain(..self.off);
            self.off = 0;
        }
        Bytes::from(self.buf)
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..]
    }

    fn consume(&mut self, cnt: usize) {
        self.off += cnt;
        // Reclaim the dead prefix once it dominates the buffer, keeping
        // advance/split_to amortized O(1) without unbounded growth.
        if self.off > 4096 && self.off * 2 > self.buf.len() {
            self.buf.drain(..self.off);
            self.off = 0;
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.consume(cnt);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut {
            buf: v.to_vec(),
            off: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let off = self.off;
        &mut self.buf[off..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BytesMut {}

impl Clone for BytesMut {
    fn clone(&self) -> Self {
        BytesMut {
            buf: self.as_slice().to_vec(),
            off: 0,
        }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", self.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_be() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32(0xDEADBEEF);
        b.put_u64(42);
        b.put_slice(b"xyz");
        assert_eq!(b.len(), 1 + 4 + 8 + 3);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(&r[..], b"xyz");
    }

    #[test]
    fn be_byte_order_on_the_wire() {
        let mut b = BytesMut::new();
        b.put_u32(1);
        assert_eq!(&b[..], &[0, 0, 0, 1]);
    }

    #[test]
    fn split_and_advance() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        b.advance(6);
        assert_eq!(&b[..], b"world");
        let head = b.split_to(3);
        assert_eq!(&head[..], b"wor");
        assert_eq!(&b[..], b"ld");
        let rest = b.split();
        assert_eq!(&rest[..], b"ld");
        assert!(b.is_empty());
    }

    #[test]
    fn bytes_view_split() {
        let mut b = Bytes::from(b"abcdef".to_vec());
        let head = b.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&b[..], b"cdef");
        assert_eq!(b.slice(1..3), Bytes::from(b"de".to_vec()));
        // The clone shares storage but views independently.
        let mut c = b.clone();
        c.advance(1);
        assert_eq!(&b[..], b"cdef");
        assert_eq!(&c[..], b"def");
    }

    #[test]
    fn compaction_keeps_contents() {
        let mut b = BytesMut::new();
        for i in 0..10_000u32 {
            b.put_u32(i);
            let _ = b.split_to(2);
            b.advance(2);
        }
        assert!(b.is_empty());
    }
}
