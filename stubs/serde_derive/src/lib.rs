//! Offline shim for `serde_derive` (see `stubs/README.md`).
//!
//! A hand-rolled derive for the shim `serde`'s value-tree model — no
//! syn/quote, just a direct walk of the item's token stream. Supports
//! what this workspace derives and nothing more: non-generic structs
//! (named, tuple, unit) and enums (unit / tuple / struct variants),
//! with serde's default externally-tagged representation. `#[serde]`
//! attributes and generics are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy)]
enum Which {
    Serialize,
    Deserialize,
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match which {
            Which::Serialize => gen_serialize(&item),
            Which::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive shim generated bad code: {e}\");")
            .parse()
            .unwrap()
    })
}

// ------------------------------------------------------------ parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);

    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde shim: generic type {name} not supported"));
    }

    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("serde shim: cannot derive for `{other}` items")),
    };
    Ok(Item { name, kind })
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(_))) {
            *i += 1;
        }
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advances past a type, stopping after the `,` that ends it (or at the
/// end of the stream). Tracks `<`/`>` so commas inside generic
/// arguments don't terminate early; parens/brackets are opaque groups.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(ts: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    loop {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            return Ok(fields);
        }
        skip_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field {name}, got {other:?}")),
        }
        skip_type(&toks, &mut i);
        fields.push(name);
    }
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_type(&toks, &mut i);
        n += 1;
    }
    n
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    loop {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            return Ok(variants);
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream())?)
            }
            _ => Shape::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            // Explicit discriminant: skip its expression.
            i += 1;
            skip_type(&toks, &mut i);
        } else if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
}

// ------------------------------------------------------------ codegen

fn tuple_binders(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("f{k}")).collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", entries.join(", "))
        }
        Kind::UnitStruct => "::serde::Content::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(::std::string::String::from({vn:?}))"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Content::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Serialize::to_content(f0))])"
                        ),
                        Shape::Tuple(n) => {
                            let binders = tuple_binders(*n);
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Content::Seq(::std::vec![{}]))])",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Content::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Content::Map(::std::vec![{}]))])",
                                fields.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::decode_field(m, {f:?}, {name:?})?"))
                .collect();
            format!(
                "let m = c.as_map().ok_or_else(|| ::serde::DeError::custom(\
                 ::std::format!(\"expected map for {name}, got {{c:?}}\")))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_content(&s[{k}])?"))
                .collect();
            format!(
                "let s = c.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected seq for {name}\"))?;\n\
                 if s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn})")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_content(v)?))"
                        )),
                        Shape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_content(&s[{k}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let s = v.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected seq for {name}::{vn}\"))?;\n\
                                 if s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::decode_field(mm, {f:?}, \"{name}::{vn}\")?")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let mm = v.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected map for {name}::{vn}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let str_arm = format!(
                "::serde::Content::Str(s) => match s.as_str() {{ {} _ => \
                 ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown {name} variant {{s:?}}\"))) }}",
                unit_arms
                    .iter()
                    .map(|a| format!("{a},"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            let map_arm = format!(
                "::serde::Content::Map(m) if m.len() == 1 => {{\n\
                 let (k, v) = &m[0];\n\
                 let _ = v;\n\
                 match k.as_str() {{ {} _ => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown {name} variant {{k:?}}\"))) }}\n\
                 }}",
                data_arms
                    .iter()
                    .map(|a| format!("{a},"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            format!(
                "match c {{\n{str_arm},\n{map_arm},\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"bad encoding for {name}: {{other:?}}\")))\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         let _ = c;\n{body}\n}}\n}}"
    )
}
