//! Offline shim for `parking_lot` (see `stubs/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly, and `Condvar`
//! takes `&mut MutexGuard` instead of consuming it. Poisoned locks are
//! recovered transparently (parking_lot has no poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- Mutex

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar` can temporarily take the std guard out
    // while blocking and put the re-acquired one back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(g) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

// -------------------------------------------------------------- RwLock

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.inner.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.inner.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// ------------------------------------------------------------- Condvar

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, deadline - now)
    }

    pub fn wait_while<'a, T>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut **guard) {
            self.wait(guard);
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        let r = cv.wait_until(&mut g, Instant::now() - Duration::from_millis(1));
        assert!(r.timed_out());
    }
}
