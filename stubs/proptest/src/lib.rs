//! Offline shim for `proptest` (see `stubs/README.md`).
//!
//! Implements the strategy combinators this workspace uses —
//! `any`, integer ranges, regex string literals, `prop_map`,
//! `prop_oneof!`, `collection::vec`, `sample::select`, `option::of`,
//! `Just` — over a deterministic splitmix/xorshift RNG, and a
//! `proptest!` macro that runs each case seeded by
//! `(module, test name, case index)`. No shrinking: a failing case
//! panics via the normal assert machinery with the case number in the
//! generated-value report left to the assertion message itself.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

// ----------------------------------------------------------------- rng

/// Deterministic xorshift64* generator used by the runner.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn deterministic(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        TestRng((z ^ (z >> 31)) | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, n)`; `n == 0` returns 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// FNV-1a seed mix for (module path, test name, case index).
pub fn seed_for(module: &str, name: &str, case: u32) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in module.bytes().chain(name.bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    h ^ u64::from(case)
}

// ------------------------------------------------------------- config

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Accepted for API compatibility; the shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

// ----------------------------------------------------------- strategy

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            strategy: self,
            map: f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Type-erased strategy, cheap to clone (used by `prop_oneof!`).
pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<V>(Vec<BoxedStrategy<V>>);

impl<V> Clone for OneOf<V> {
    fn clone(&self) -> Self {
        OneOf(self.0.clone())
    }
}

impl<V> OneOf<V> {
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        OneOf(alternatives)
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------- primitive sources

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        any_char(rng)
    }
}

#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                lo + rng.below(span.saturating_add(1)) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

macro_rules! srange_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

srange_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

// A bare string literal is a regex strategy, as in real proptest.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match string::compile_regex(self) {
            Ok(pat) => string::generate(&pat, rng),
            Err(e) => panic!("bad regex strategy {self:?}: {e}"),
        }
    }
}

/// Character pool for `.`: mostly printable ASCII, salted with
/// multi-byte unicode so UTF-8 handling gets exercised.
fn any_char(rng: &mut TestRng) -> char {
    const EXOTIC: &[char] = &['é', 'Ω', 'ß', '語', 'д', '\u{80}', '\u{2603}', '\u{1F680}'];
    if rng.below(8) == 0 {
        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
    } else {
        char::from(0x20 + rng.below(0x5F) as u8)
    }
}

pub mod collection {
    use super::*;

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `len` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::*;

    #[derive(Clone)]
    pub struct Select<T>(Vec<T>);

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod option {
    use super::*;

    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    /// `Some` three times out of four, like real proptest's default.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod string {
    use super::*;

    /// Error from regex compilation (shown via `unwrap()` in tests).
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy(Vec<Piece>);

    #[derive(Debug, Clone)]
    pub(crate) struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    #[derive(Debug, Clone)]
    pub(crate) enum Atom {
        Literal(char),
        AnyChar,
        Class(Vec<(char, char)>),
    }

    /// Compiles the subset of regex syntax the workspace's strategies
    /// use: literals, `.`, `[...]` classes with ranges, and the
    /// quantifiers `{m,n}` / `{m}` / `{m,}` / `*` / `+` / `?`.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        compile_regex(pattern).map(RegexGeneratorStrategy)
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate(&self.0, rng)
        }
    }

    pub(crate) fn generate(pieces: &[Piece], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in pieces {
            let span = (piece.max - piece.min) as u64;
            let n = piece.min + rng.below(span.saturating_add(1)) as usize;
            for _ in 0..n {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::AnyChar => out.push(any_char(rng)),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                        let span = hi as u32 - lo as u32;
                        let code = lo as u32 + rng.below(u64::from(span) + 1) as u32;
                        out.push(char::from_u32(code).unwrap_or(lo));
                    }
                }
            }
        }
        out
    }

    pub(crate) fn compile_regex(pattern: &str) -> Result<Vec<Piece>, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::AnyChar
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    if chars.get(i) == Some(&'^') {
                        return Err(Error("negated classes unsupported".into()));
                    }
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            *chars
                                .get(i)
                                .ok_or_else(|| Error("dangling escape".into()))?
                        } else {
                            chars[i]
                        };
                        i += 1;
                        if chars.get(i) == Some(&'-') && i + 1 < chars.len() && chars[i + 1] != ']'
                        {
                            let hi = chars[i + 1];
                            if hi < lo {
                                return Err(Error(format!("bad range {lo}-{hi}")));
                            }
                            ranges.push((lo, hi));
                            i += 2;
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    if i >= chars.len() {
                        return Err(Error("unterminated class".into()));
                    }
                    i += 1; // ']'
                    if ranges.is_empty() {
                        return Err(Error("empty class".into()));
                    }
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .ok_or_else(|| Error("dangling escape".into()))?;
                    i += 1;
                    let lit = match c {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    };
                    Atom::Literal(lit)
                }
                '(' | ')' | '|' => {
                    return Err(Error(format!(
                        "regex feature `{}` unsupported by the proptest shim",
                        chars[i]
                    )))
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    i += 1;
                    let mut lo = String::new();
                    while matches!(chars.get(i), Some(c) if c.is_ascii_digit()) {
                        lo.push(chars[i]);
                        i += 1;
                    }
                    let lo: usize = lo
                        .parse()
                        .map_err(|_| Error("bad {m,n} quantifier".into()))?;
                    let hi = match chars.get(i) {
                        Some(',') => {
                            i += 1;
                            let mut hi = String::new();
                            while matches!(chars.get(i), Some(c) if c.is_ascii_digit()) {
                                hi.push(chars[i]);
                                i += 1;
                            }
                            if hi.is_empty() {
                                lo + 8
                            } else {
                                hi.parse()
                                    .map_err(|_| Error("bad {m,n} quantifier".into()))?
                            }
                        }
                        _ => lo,
                    };
                    if chars.get(i) != Some(&'}') {
                        return Err(Error("unterminated quantifier".into()));
                    }
                    i += 1;
                    if hi < lo {
                        return Err(Error("quantifier max below min".into()));
                    }
                    (lo, hi)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        Ok(pieces)
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

// -------------------------------------------------------------- macros

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::deterministic(
                        $crate::seed_for(module_path!(), stringify!($name), __case),
                    );
                    $(let $arg = $crate::Strategy::generate(&{ $strat }, &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..200 {
            let v = (3u64..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::deterministic(2);
        let pat = string::string_regex("[a-z]{1,8}").unwrap();
        for _ in 0..100 {
            let s = pat.generate(&mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
        let any64 = ".{0,64}";
        for _ in 0..100 {
            let s = Strategy::generate(&any64, &mut rng);
            assert!(s.chars().count() <= 64);
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::deterministic(3);
        let s = prop_oneof![Just(1u8), 10u8..20, any::<u8>().prop_map(|v| v / 2)];
        for _ in 0..100 {
            let _ = s.generate(&mut rng);
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0u32..10, flag in any::<bool>(), s in "[ab]{2}") {
            prop_assert!(x < 10);
            let _ = flag;
            prop_assert_eq!(s.len(), 2);
        }
    }
}
