//! Offline shim for `serde` (see `stubs/README.md`).
//!
//! Instead of serde's visitor architecture this shim round-trips every
//! value through an owned, JSON-shaped tree ([`Content`]). `Serialize`
//! renders a value to a `Content`; `Deserialize` rebuilds it from one.
//! Formats (here: `serde_json`) then only convert `Content` to and
//! from text. The derive macros in `serde_derive` target exactly this
//! model, following serde's default conventions: structs as maps,
//! externally-tagged enums, `None` as null, maps with stringified
//! keys.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree every (de)serialization passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable mismatch description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// The real serde distinguishes borrowed from owned deserialization;
/// this shim is always owned, so the marker is a blanket alias.
pub mod de {
    pub use crate::{DeError, Deserialize};

    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

pub mod ser {
    pub use crate::Serialize;
}

/// Looks up a struct field in a decoded map (derive-macro helper).
pub fn decode_field<T: Deserialize>(
    m: &[(String, Content)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    match m.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_content(v),
        None => Err(DeError::custom(format!("missing field `{key}` for {ty}"))),
    }
}

// -------------------------------------------------------- primitives

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let n = match *c {
                    Content::U64(n) => n,
                    Content::I64(n) if n >= 0 => n as u64,
                    Content::F64(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    ref other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let n: i64 = match *c {
                    Content::I64(n) => n,
                    Content::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError::custom(format!("{n} out of i64 range")))?,
                    Content::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match *c {
            Content::F64(f) => Ok(f),
            Content::U64(n) => Ok(n as f64),
            Content::I64(n) => Ok(n as f64),
            ref other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = String::from_content(c)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(_: &Content) -> Result<Self, DeError> {
        Ok(())
    }
}

// ------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::custom(format!("expected sequence, got {c:?}")))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c
                    .as_seq()
                    .ok_or_else(|| DeError::custom(format!("expected tuple seq, got {c:?}")))?;
                const N: usize = 0 $(+ { let _ = $n; 1 })+;
                if s.len() != N {
                    return Err(DeError::custom(format!(
                        "expected tuple of {N}, got {} elements", s.len()
                    )));
                }
                Ok(($($t::from_content(&s[$n])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys cross the tree as strings, mirroring JSON's object keys.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse()
                    .map_err(|_| DeError::custom(format!("bad {} map key {s:?}", stringify!($t))))
            }
        }
    )*};
}

int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {c:?}")))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {c:?}")))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_content(&self) -> Content {
        match self {
            Ok(v) => Content::Map(vec![("Ok".to_string(), v.to_content())]),
            Err(e) => Content::Map(vec![("Err".to_string(), e.to_content())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let m = c
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected Ok/Err map, got {c:?}")))?;
        match m {
            [(k, v)] if k == "Ok" => T::from_content(v).map(Ok),
            [(k, v)] if k == "Err" => E::from_content(v).map(Err),
            _ => Err(DeError::custom("expected single-key Ok/Err map")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let c = v.to_content();
        assert_eq!(T::from_content(&c).unwrap(), v);
    }

    #[test]
    fn primitive_roundtrips() {
        rt(42u32);
        rt(-7i64);
        rt(true);
        rt(String::from("dæmon"));
        rt(Some(3u8));
        rt(Option::<u8>::None);
        rt(vec![1u64, 2, 3]);
        rt((1u32, String::from("x")));
        rt(Ok::<u32, String>(5));
        rt(Err::<u32, String>("boom".into()));
    }

    #[test]
    fn int_keyed_maps_stringify() {
        let mut m = HashMap::new();
        m.insert(3u32, String::from("three"));
        let c = m.to_content();
        assert_eq!(c.as_map().unwrap()[0].0, "3");
        rt(m);
    }

    #[test]
    fn range_checks_fail_cleanly() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
    }
}
