//! Offline shim for `serde_json` (see `stubs/README.md`).
//!
//! Renders the shim serde's [`Content`] tree to JSON text and parses
//! it back: objects, arrays, strings with full escape handling
//! (including `\uXXXX` surrogate pairs), integers, floats, bools and
//! null. `to_string`/`to_vec`/`from_str`/`from_slice` match the real
//! crate's signatures.

use serde::de::DeserializeOwned;
use serde::{Content, Serialize};
use std::fmt;

/// Error from JSON encoding, parsing or value mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let content = p.parse_document()?;
    Ok(T::from_content(&content)?)
}

pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ----------------------------------------------------------- printing

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                // serde_json rejects non-finite floats; emitting null
                // keeps the output valid JSON without a fallible writer.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(&mut self) -> Result<Content> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null").map(|_| Content::Null),
            Some(b't') => self.eat_lit("true").map(|_| Content::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|_| Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Valid UTF-8 guaranteed: the input is a &str.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<()> {
        let c = self.peek().ok_or_else(|| self.err("bad escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: must be followed by \uDC00-\uDFFF.
                    self.eat_lit("\\u")
                        .map_err(|_| self.err("lone surrogate"))?;
                    let lo = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("short \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Content::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Content {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.parse_document().unwrap()
    }

    #[test]
    fn scalars() {
        assert_eq!(parse("null"), Content::Null);
        assert_eq!(parse(" true "), Content::Bool(true));
        assert_eq!(parse("42"), Content::U64(42));
        assert_eq!(parse("-3"), Content::I64(-3));
        assert_eq!(parse("1.5"), Content::F64(1.5));
        assert_eq!(parse("1e3"), Content::F64(1000.0));
        assert_eq!(parse("\"hi\\n\\u00e9\""), Content::Str("hi\né".into()));
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(
            parse("\"\\ud83d\\ude80\""),
            Content::Str("\u{1F680}".into())
        );
    }

    #[test]
    fn nested_containers() {
        let c = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#);
        let m = c.as_map().unwrap();
        assert_eq!(m[0].0, "a");
        assert_eq!(m[1], ("c".to_string(), Content::Str("x".into())));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"abc", "nul", "1 2", "{\"a\" 1}"] {
            let mut p = Parser {
                bytes: bad.as_bytes(),
                pos: 0,
            };
            assert!(p.parse_document().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn string_output_escapes_and_roundtrips() {
        let s = "quote\" slash\\ newline\n tab\t unicode:é🚀 ctrl:\u{01}";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn value_roundtrip_through_text() {
        use std::collections::HashMap;
        let mut m: HashMap<u32, Vec<String>> = HashMap::new();
        m.insert(3, vec!["a".into(), "b".into()]);
        let text = to_string(&m).unwrap();
        let back: HashMap<u32, Vec<String>> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }
}
