//! Offline shim for `rand` (see `stubs/README.md`).
//!
//! The workspace declares `rand` but does not currently call it; this
//! shim provides a tiny deterministic xorshift generator so future
//! callers have something real to use offline.

/// A small, fast, non-cryptographic PRNG (xorshift64*).
#[derive(Debug, Clone)]
pub struct SmallRng(u64);

impl SmallRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 the seed so 0 doesn't get stuck.
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        SmallRng((z ^ (z >> 31)) | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_varied() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }
}
