//! Offline shim for `crossbeam` (see `stubs/README.md`).
//!
//! Only the `channel` module is provided: MPMC `unbounded`/`bounded`
//! channels with the blocking, timeout and non-blocking receive forms
//! the workspace uses. Built on `std::sync::{Mutex, Condvar}`; a
//! bounded sender blocks while the queue is at capacity (backpressure).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        state: Mutex<State<T>>,
        // Waiters for "queue non-empty or no senders left".
        recv_cv: Condvar,
        // Waiters for "queue below capacity or no receivers left".
        send_cv: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// A bounded MPMC channel; `send` blocks while full. A capacity of
    /// zero is treated as one (true rendezvous is not implemented —
    /// nothing in this workspace uses it).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T> State<T> {
        fn full(&self) -> bool {
            matches!(self.cap, Some(c) if self.queue.len() >= c)
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if !st.full() {
                    st.queue.push_back(value);
                    self.shared.recv_cv.notify_one();
                    return Ok(());
                }
                st = self
                    .shared
                    .send_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.full() {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            self.shared.recv_cv.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.send_cv.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .recv_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.send_cv.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .shared
                    .recv_cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.lock();
            if let Some(v) = st.queue.pop_front() {
                self.shared.send_cv.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator until all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Drains currently available values without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.recv_cv.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.send_cv.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            let t = std::thread::spawn(move || tx.send(3));
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn mpmc_clones_work() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            tx2.send(7).unwrap();
            drop(tx);
            drop(tx2);
            let got = rx2.recv().unwrap();
            assert_eq!(got, 7);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
