//! Model-aware `std::thread` lookalikes: spawned threads become model
//! threads whose every synchronization operation is scheduled by
//! [`crate::model`]'s DFS driver.

use crate::rt;

pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<Option<T>>,
    tid: Option<usize>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(tid) = self.tid {
            // Model-level join first (a scheduling decision), then the
            // OS-level join, which at that point cannot block long.
            rt::join_thread(tid);
        }
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            // The wrapper already recorded the panic in the execution;
            // surface a placeholder payload to the joiner.
            Ok(None) => Err(Box::new("loom (shim): model thread panicked")),
            Err(e) => Err(e),
        }
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if !rt::in_model() {
        let inner = std::thread::spawn(move || Some(f()));
        return JoinHandle { inner, tid: None };
    }
    // Register synchronously in the parent so tids are deterministic,
    // then let the scheduler decide when the child first runs.
    let tid = rt::register_thread();
    let inner = std::thread::Builder::new()
        .name(format!("loom-{tid}"))
        .spawn(move || rt::run_thread(tid, f))
        .expect("spawn loom thread");
    rt::schedule_point();
    JoinHandle {
        inner,
        tid: Some(tid),
    }
}

pub fn yield_now() {
    if rt::in_model() {
        rt::schedule_point();
    } else {
        std::thread::yield_now();
    }
}
