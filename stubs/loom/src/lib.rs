//! Offline shim for `loom` (see `stubs/README.md`): a miniature
//! systematic concurrency checker.
//!
//! The real `loom` replaces `std::sync` with instrumented versions and
//! runs a closure under *every* meaningful thread interleaving,
//! turning heisenbugs (lost wakeups, deadlocks, ordering races) into
//! deterministic test failures. This shim implements the same idea
//! with a much simpler engine, in the style of CHESS-like systematic
//! testing:
//!
//! * Model threads are real OS threads, but only **one runs at a
//!   time** — every synchronization operation (mutex acquire, condvar
//!   wait/notify, atomic access) is a *scheduling point* where a
//!   central scheduler picks which thread proceeds.
//! * The scheduler explores the tree of scheduling decisions by
//!   **depth-first search with replay**: each execution records the
//!   decisions taken; the next execution replays the prefix and flips
//!   the last decision that still has an untried alternative, until
//!   the whole tree is exhausted.
//! * A timed condvar wait stays *eligible for scheduling* while
//!   parked: picking it means its timeout fired. Both the
//!   timely-notify and the timeout interleavings are therefore
//!   explored, like loom's spurious-timeout model.
//! * If no thread is runnable and not all have finished, the execution
//!   **deadlocked** — reported as a panic naming each thread's state.
//!   Lost-wakeup bugs surface this way.
//!
//! Compared to the real crate: only sequentially-consistent atomics
//! are modelled (no weak-memory reorderings, no partial-order
//! reduction), so keep models small — a handful of threads, ≲10 lock
//! operations each. Exploration is capped at `LOOM_MAX_ITERATIONS`
//! executions (default 1,000,000); exceeding the cap fails the test
//! rather than passing it silently.
//!
//! Outside of [`model`] the primitives degrade to their `std`
//! behaviour, so code built with `--cfg loom` still runs normally when
//! it is not under the checker.

use std::sync::PoisonError;

mod rt;
pub mod sync;
pub mod thread;

pub use rt::model;

pub(crate) fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}
