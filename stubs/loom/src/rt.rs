//! The scheduler: serialized execution with DFS over scheduling
//! decisions. See the crate docs for the model.

use crate::recover;
use std::any::Any;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard, OnceLock};

/// What a model thread is doing, from the scheduler's point of view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Blocked acquiring the mutex with this object id.
    MutexWait(u64),
    /// Parked in an untimed condvar wait.
    CvWait(u64),
    /// Parked in a timed condvar wait — still *eligible*: scheduling
    /// it means the timeout fires.
    CvTimedWait(u64),
    /// Blocked joining the thread with this tid.
    JoinWait(usize),
    Finished,
}

struct Thd {
    status: Status,
    /// Set when a timed wait was woken by its timeout rather than a
    /// notification; consumed by `cv_wait`.
    timed_out: bool,
}

impl Thd {
    fn runnable() -> Thd {
        Thd {
            status: Status::Runnable,
            timed_out: false,
        }
    }
}

/// One branch point: which of `options` (tids) ran. DFS flips `picked`
/// through every index.
#[derive(Debug)]
struct Decision {
    options: Vec<usize>,
    picked: usize,
}

#[derive(Default)]
struct Exec {
    active: bool,
    threads: Vec<Thd>,
    /// The only thread allowed to make progress.
    current: usize,
    /// Object ids of model mutexes currently held.
    held: Vec<u64>,
    /// Decision trace: replayed as a prefix, extended past it.
    schedule: Vec<Decision>,
    /// Replay cursor into `schedule`.
    pos: usize,
    /// A panic or deadlock happened: every parked thread unwinds.
    aborting: bool,
    failure: Option<Box<dyn Any + Send + 'static>>,
    /// All threads finished; the controller may collect the execution.
    done: bool,
}

impl Default for Thd {
    fn default() -> Thd {
        Thd::runnable()
    }
}

struct Rt {
    mu: OsMutex<Exec>,
    cv: OsCondvar,
}

fn rt() -> &'static Rt {
    static RT: OnceLock<Rt> = OnceLock::new();
    RT.get_or_init(|| Rt {
        mu: OsMutex::new(Exec::default()),
        cv: OsCondvar::new(),
    })
}

fn lock_exec() -> OsGuard<'static, Exec> {
    recover(rt().mu.lock())
}

thread_local! {
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Whether the calling thread is a model thread of an active
/// execution. Non-model threads (and everything outside [`model`])
/// fall back to plain `std` behaviour.
pub(crate) fn in_model() -> bool {
    TID.with(|t| t.get()).is_some()
}

fn cur_tid() -> usize {
    TID.with(|t| t.get()).expect("not a loom model thread")
}

/// Tids eligible to be scheduled: runnable threads, plus timed waiters
/// (scheduling one = its timeout fires).
fn eligible(exec: &Exec) -> Vec<usize> {
    exec.threads
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t.status, Status::Runnable | Status::CvTimedWait(_)))
        .map(|(i, _)| i)
        .collect()
}

/// Record (or replay) a choice among `options`, returning the pick.
fn choose(exec: &mut Exec, options: Vec<usize>) -> usize {
    debug_assert!(!options.is_empty());
    if options.len() == 1 {
        return options[0];
    }
    if exec.pos < exec.schedule.len() {
        let d = &exec.schedule[exec.pos];
        debug_assert_eq!(
            d.options, options,
            "loom (shim): nondeterministic model — replay diverged"
        );
        let picked = d.options[d.picked];
        exec.pos += 1;
        picked
    } else {
        exec.schedule.push(Decision {
            options: options.clone(),
            picked: 0,
        });
        exec.pos += 1;
        options[0]
    }
}

/// Pick the next thread to run and wake it. If nothing is eligible and
/// threads are still alive, the execution deadlocked.
fn handoff(exec: &mut Exec) {
    let options = eligible(exec);
    if options.is_empty() {
        if exec.threads.iter().all(|t| t.status == Status::Finished) {
            exec.done = true;
        } else {
            exec.aborting = true;
            if exec.failure.is_none() {
                let states: Vec<String> = exec
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(i, t)| format!("thread {i}: {:?}", t.status))
                    .collect();
                exec.failure = Some(Box::new(format!(
                    "loom (shim): DEADLOCK — no thread can make progress [{}]",
                    states.join(", ")
                )));
            }
        }
        rt().cv.notify_all();
        return;
    }
    let chosen = choose(exec, options);
    if let Status::CvTimedWait(_) = exec.threads[chosen].status {
        // Scheduling a timed waiter = its timeout fires.
        exec.threads[chosen].status = Status::Runnable;
        exec.threads[chosen].timed_out = true;
    }
    exec.current = chosen;
    rt().cv.notify_all();
}

/// Park until the scheduler hands execution to `tid` (or the
/// execution aborts, in which case unwind so the thread wrapper can
/// mark this thread finished).
fn wait_my_turn(mut g: OsGuard<'static, Exec>, tid: usize) -> OsGuard<'static, Exec> {
    loop {
        if g.aborting {
            drop(g);
            panic!("loom (shim): execution aborted");
        }
        if g.current == tid && g.threads[tid].status == Status::Runnable {
            return g;
        }
        g = recover(rt().cv.wait(g));
    }
}

/// A plain scheduling point: let any eligible thread (including the
/// caller) run next. Called before every atomic access and on
/// `yield_now`.
pub(crate) fn schedule_point() {
    if !in_model() {
        return;
    }
    let tid = cur_tid();
    let mut g = lock_exec();
    if !g.active {
        return;
    }
    handoff(&mut g);
    let _g = wait_my_turn(g, tid);
}

/// Model-level mutex acquire (with a leading scheduling point).
pub(crate) fn acquire(mid: u64) {
    let tid = cur_tid();
    let mut g = lock_exec();
    handoff(&mut g);
    g = wait_my_turn(g, tid);
    reacquire_locked(g, tid, mid);
}

/// Acquire without the leading scheduling point — used when waking
/// from a condvar wait (the wake-up itself was the decision).
fn reacquire_locked(mut g: OsGuard<'static, Exec>, tid: usize, mid: u64) {
    loop {
        if !g.held.contains(&mid) {
            g.held.push(mid);
            return;
        }
        g.threads[tid].status = Status::MutexWait(mid);
        handoff(&mut g);
        g = wait_my_turn(g, tid);
    }
}

/// Try-acquire: a scheduling point, then a non-blocking attempt.
pub(crate) fn try_acquire(mid: u64) -> bool {
    let tid = cur_tid();
    let mut g = lock_exec();
    handoff(&mut g);
    g = wait_my_turn(g, tid);
    if g.held.contains(&mid) {
        false
    } else {
        g.held.push(mid);
        true
    }
}

/// Model-level mutex release. Not a scheduling point: the releaser
/// keeps running until its next synchronization operation.
pub(crate) fn release(mid: u64) {
    let mut g = lock_exec();
    if !g.active {
        return;
    }
    g.held.retain(|m| *m != mid);
    for t in g.threads.iter_mut() {
        if t.status == Status::MutexWait(mid) {
            t.status = Status::Runnable;
        }
    }
}

/// Condvar wait: atomically release `mid`, park on `cvid`, and on
/// wake-up reacquire `mid`. Returns whether a timed wait timed out.
pub(crate) fn cv_wait(cvid: u64, mid: u64, timed: bool) -> bool {
    let tid = cur_tid();
    let mut g = lock_exec();
    g.held.retain(|m| *m != mid);
    for t in g.threads.iter_mut() {
        if t.status == Status::MutexWait(mid) {
            t.status = Status::Runnable;
        }
    }
    g.threads[tid].status = if timed {
        Status::CvTimedWait(cvid)
    } else {
        Status::CvWait(cvid)
    };
    g.threads[tid].timed_out = false;
    handoff(&mut g);
    g = wait_my_turn(g, tid);
    let timed_out = std::mem::take(&mut g.threads[tid].timed_out);
    reacquire_locked(g, tid, mid);
    timed_out
}

/// Wake waiters of `cvid`. `notify_one` picks *which* waiter wakes as
/// a recorded scheduling decision.
pub(crate) fn notify(cvid: u64, all: bool) {
    let mut g = lock_exec();
    if !g.active {
        return;
    }
    let waiters: Vec<usize> = g
        .threads
        .iter()
        .enumerate()
        .filter(
            |(_, t)| matches!(t.status, Status::CvWait(c) | Status::CvTimedWait(c) if c == cvid),
        )
        .map(|(i, _)| i)
        .collect();
    if waiters.is_empty() {
        return;
    }
    if all {
        for w in waiters {
            g.threads[w].status = Status::Runnable;
            g.threads[w].timed_out = false;
        }
    } else {
        let w = choose(&mut g, waiters);
        g.threads[w].status = Status::Runnable;
        g.threads[w].timed_out = false;
    }
}

/// Register a new model thread; it starts runnable but does not run
/// until scheduled.
pub(crate) fn register_thread() -> usize {
    let mut g = lock_exec();
    g.threads.push(Thd::runnable());
    g.threads.len() - 1
}

/// Body wrapper for every model thread: adopt the tid, wait to be
/// scheduled, run, then mark finished (recording any panic).
pub(crate) fn run_thread<T>(tid: usize, f: impl FnOnce() -> T) -> Option<T> {
    TID.with(|t| t.set(Some(tid)));
    let res = panic::catch_unwind(AssertUnwindSafe(|| {
        {
            let g = lock_exec();
            let _g = wait_my_turn(g, tid);
        }
        f()
    }));
    let mut g = lock_exec();
    let out = match res {
        Ok(v) => Some(v),
        Err(p) => {
            if g.failure.is_none() {
                g.failure = Some(p);
            }
            g.aborting = true;
            None
        }
    };
    finish_locked(&mut g, tid);
    out
}

fn finish_locked(g: &mut Exec, tid: usize) {
    g.threads[tid].status = Status::Finished;
    for t in g.threads.iter_mut() {
        if t.status == Status::JoinWait(tid) {
            t.status = Status::Runnable;
        }
    }
    if g.threads.iter().all(|t| t.status == Status::Finished) {
        g.done = true;
        rt().cv.notify_all();
        return;
    }
    if g.aborting {
        // Parked threads wake, see the abort flag, and unwind.
        rt().cv.notify_all();
        return;
    }
    handoff(g);
}

/// Block until thread `tid` finishes.
pub(crate) fn join_thread(tid: usize) {
    let me = cur_tid();
    let mut g = lock_exec();
    if g.threads[tid].status != Status::Finished {
        g.threads[me].status = Status::JoinWait(tid);
        handoff(&mut g);
        let _g = wait_my_turn(g, me);
    }
}

/// Run `f` under every interleaving of its model threads' scheduling
/// decisions (depth-first, with prefix replay). Panics — including
/// deadlocks and the iteration cap — propagate to the caller, so a
/// failing schedule fails the enclosing `#[test]`.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    // One model at a time: the scheduler state is global.
    static SERIAL: OsMutex<()> = OsMutex::new(());
    let _serial = recover(SERIAL.lock());

    let max_iters: u64 = std::env::var("LOOM_MAX_ITERATIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let f = std::sync::Arc::new(f);
    let mut schedule: Vec<Decision> = Vec::new();
    let mut iters: u64 = 0;
    loop {
        iters += 1;
        assert!(
            iters <= max_iters,
            "loom (shim): exceeded {max_iters} executions without exhausting \
             the schedule space — shrink the model or raise LOOM_MAX_ITERATIONS"
        );
        {
            let mut g = lock_exec();
            *g = Exec {
                active: true,
                threads: vec![Thd::runnable()],
                current: 0,
                held: Vec::new(),
                schedule: std::mem::take(&mut schedule),
                pos: 0,
                aborting: false,
                failure: None,
                done: false,
            };
        }
        let body = f.clone();
        let main = std::thread::Builder::new()
            .name("loom-model".into())
            .spawn(move || {
                run_thread(0, move || body());
            })
            .expect("spawn loom model thread");
        {
            let mut g = lock_exec();
            while !g.done {
                g = recover(rt().cv.wait(g));
            }
        }
        let _ = main.join();
        let failure = {
            let mut g = lock_exec();
            g.active = false;
            schedule = std::mem::take(&mut g.schedule);
            g.failure.take()
        };
        if let Some(p) = failure {
            panic::resume_unwind(p);
        }
        // Backtrack: flip the deepest decision with an untried option.
        loop {
            match schedule.last_mut() {
                None => return, // schedule space exhausted: model passed
                Some(d) if d.picked + 1 < d.options.len() => {
                    d.picked += 1;
                    break;
                }
                Some(_) => {
                    schedule.pop();
                }
            }
        }
    }
}

/// Fresh object id for a model mutex/condvar.
pub(crate) fn next_object_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}
