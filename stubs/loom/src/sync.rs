//! Model-aware `std::sync` lookalikes. Inside [`crate::model`] every
//! operation routes through the scheduler; outside, they behave like
//! the `std` primitives they wrap.

use crate::{recover, rt};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, LockResult};
use std::time::Duration;

pub use std::sync::{Arc, Weak};

// ---------------------------------------------------------------- Mutex

pub struct Mutex<T: ?Sized> {
    id: u64,
    os: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// Acquired through the model scheduler (vs. plain std fallback).
    model: bool,
    /// `Option` so `Condvar` can release and re-take the inner guard.
    g: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            id: rt::next_object_id(),
            os: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(recover(self.os.into_inner()))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model = rt::in_model();
        if model {
            rt::acquire(self.id);
        }
        // Model mode serializes access, so the inner lock is free.
        let g = recover(self.os.lock());
        Ok(MutexGuard {
            lock: self,
            model,
            g: Some(g),
        })
    }

    pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, sync::TryLockError<MutexGuard<'_, T>>> {
        let model = rt::in_model();
        if model {
            if !rt::try_acquire(self.id) {
                return Err(sync::TryLockError::WouldBlock);
            }
            let g = recover(self.os.lock());
            return Ok(MutexGuard {
                lock: self,
                model,
                g: Some(g),
            });
        }
        match self.os.try_lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                model,
                g: Some(g),
            }),
            Err(sync::TryLockError::Poisoned(e)) => Ok(MutexGuard {
                lock: self,
                model,
                g: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => Err(sync::TryLockError::WouldBlock),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock first, then the model-level hold.
        self.g = None;
        if self.model {
            rt::release(self.lock.id);
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.g.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.g.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("loom::Mutex")
    }
}

// -------------------------------------------------------------- Condvar

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

pub struct Condvar {
    id: u64,
    os: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            id: rt::next_object_id(),
            os: sync::Condvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if guard.model && rt::in_model() {
            guard.g = None; // release the data lock while parked
            rt::cv_wait(self.id, guard.lock.id, false);
            guard.g = Some(recover(guard.lock.os.lock()));
            return Ok(guard);
        }
        let g = guard.g.take().expect("guard taken");
        guard.g = Some(recover(self.os.wait(g)));
        Ok(guard)
    }

    /// Timed wait. Under the model the duration is ignored: the
    /// timeout is a *nondeterministic event* the scheduler may fire at
    /// any decision point while the thread is parked — so both the
    /// notified and the timed-out path get explored.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.model && rt::in_model() {
            guard.g = None;
            let timed_out = rt::cv_wait(self.id, guard.lock.id, true);
            guard.g = Some(recover(guard.lock.os.lock()));
            return Ok((guard, WaitTimeoutResult(timed_out)));
        }
        let g = guard.g.take().expect("guard taken");
        let (g, res) = match self.os.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => e.into_inner(),
        };
        guard.g = Some(g);
        Ok((guard, WaitTimeoutResult(res.timed_out())))
    }

    pub fn notify_one(&self) {
        if rt::in_model() {
            rt::notify(self.id, false);
        } else {
            self.os.notify_one();
        }
    }

    pub fn notify_all(&self) {
        if rt::in_model() {
            rt::notify(self.id, true);
        } else {
            self.os.notify_all();
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("loom::Condvar")
    }
}

// -------------------------------------------------------------- atomics

pub mod atomic {
    //! Sequentially-consistent model atomics: every access is a
    //! scheduling point. Weak orderings are accepted but modelled as
    //! SeqCst (the shim explores thread interleavings, not memory
    //! reorderings).

    use crate::rt;
    pub use std::sync::atomic::Ordering;

    macro_rules! atomic_common {
        ($name:ident, $t:ty) => {
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$name);

            impl $name {
                pub fn new(v: $t) -> $name {
                    $name(std::sync::atomic::$name::new(v))
                }

                pub fn load(&self, order: Ordering) -> $t {
                    rt::schedule_point();
                    self.0.load(order)
                }

                pub fn store(&self, v: $t, order: Ordering) {
                    rt::schedule_point();
                    self.0.store(v, order);
                }

                pub fn swap(&self, v: $t, order: Ordering) -> $t {
                    rt::schedule_point();
                    self.0.swap(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    cur: $t,
                    new: $t,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$t, $t> {
                    rt::schedule_point();
                    self.0.compare_exchange(cur, new, ok, err)
                }

                pub fn into_inner(self) -> $t {
                    self.0.into_inner()
                }
            }
        };
    }

    macro_rules! atomic_int {
        ($name:ident, $t:ty) => {
            atomic_common!($name, $t);

            impl $name {
                pub fn fetch_add(&self, v: $t, order: Ordering) -> $t {
                    rt::schedule_point();
                    self.0.fetch_add(v, order)
                }

                pub fn fetch_sub(&self, v: $t, order: Ordering) -> $t {
                    rt::schedule_point();
                    self.0.fetch_sub(v, order)
                }
            }
        };
    }

    atomic_common!(AtomicBool, bool);
    atomic_int!(AtomicU32, u32);
    atomic_int!(AtomicU64, u64);
    atomic_int!(AtomicUsize, usize);

    pub fn fence(_order: Ordering) {
        rt::schedule_point();
        std::sync::atomic::fence(Ordering::SeqCst);
    }
}
