//! Self-tests for the shim's CHESS-style scheduler: exploration
//! actually covers distinct interleavings, deadlocks are caught, and
//! timed waits escape via the nondeterministic timeout.

use loom::sync::{Arc, Condvar, Mutex};
use std::collections::HashSet;
use std::sync::Mutex as StdMutex;

/// Two threads append their id under a lock; DFS must visit both
/// acquisition orders.
#[test]
fn explores_both_lock_orders() {
    let seen: &'static StdMutex<HashSet<Vec<u8>>> = Box::leak(Box::default());
    loom::model(move || {
        let log = Arc::new(Mutex::new(Vec::new()));
        let l2 = Arc::clone(&log);
        let t = loom::thread::spawn(move || {
            l2.lock().unwrap().push(1u8);
        });
        log.lock().unwrap().push(2u8);
        t.join().unwrap();
        let order = log.lock().unwrap().clone();
        seen.lock().unwrap().insert(order);
    });
    let seen = seen.lock().unwrap();
    assert!(seen.contains(&vec![1, 2]), "missing child-first order");
    assert!(seen.contains(&vec![2, 1]), "missing parent-first order");
}

/// The classic lost wakeup: the waiter checks the flag, the setter
/// notifies *before* the waiter parks (no flag recheck under the same
/// critical section would be a bug — here the waiter holds the lock
/// across check+wait, so this must pass).
#[test]
fn correct_condvar_protocol_passes() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = loom::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock().unwrap();
            *g = true;
            drop(g);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        t.join().unwrap();
    });
}

/// A notify sent while nobody waits is lost; if the waiter then parks
/// untimed, some schedule deadlocks — the checker must report it.
#[test]
#[should_panic(expected = "DEADLOCK")]
fn lost_wakeup_is_reported_as_deadlock() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = loom::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock().unwrap() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        // BUG (deliberate): flag checked *outside* the wait's critical
        // section — the notify can land between check and park.
        let flag_was_set = *m.lock().unwrap();
        if !flag_was_set {
            let g = m.lock().unwrap();
            let _g = cv.wait(g).unwrap();
        }
        t.join().unwrap();
    });
}

/// Same broken protocol, but with a *timed* wait: every schedule can
/// escape via the timeout, so the model must complete.
#[test]
fn timed_wait_escapes_lost_wakeup() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = loom::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock().unwrap() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock().unwrap();
        while !*g {
            let (back, res) = cv
                .wait_timeout(g, std::time::Duration::from_millis(1))
                .unwrap();
            g = back;
            if res.timed_out() {
                break;
            }
        }
        drop(g);
        t.join().unwrap();
    });
}

/// Assertion failures inside a model thread propagate out of `model`.
#[test]
#[should_panic(expected = "boom")]
fn model_thread_panic_propagates() {
    loom::model(|| {
        let t = loom::thread::spawn(|| panic!("boom"));
        let _ = t.join();
    });
}

/// Atomics are scheduling points: an unsynchronized read-modify-write
/// race must be observable (both threads read 0 before either writes).
#[test]
fn atomic_interleavings_expose_rmw_race() {
    use loom::sync::atomic::{AtomicU64, Ordering};
    let seen: &'static StdMutex<HashSet<u64>> = Box::leak(Box::default());
    loom::model(move || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = loom::thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        seen.lock().unwrap().insert(n.load(Ordering::SeqCst));
    });
    let seen = seen.lock().unwrap();
    assert!(seen.contains(&2), "missing serialized outcome");
    assert!(seen.contains(&1), "missing lost-update outcome");
}
